//! The typed system-call interface.
//!
//! This is the boundary the interposition agent traps: every action a
//! guest program can take is one of these calls. The register-level
//! encoding (syscall numbers, argument marshalling through guest memory)
//! lives in `idbox-interpose`; the kernel itself only sees these typed
//! values.

use crate::process::{OpenFlags, Pid, Signal};
use idbox_types::Identity;
use idbox_vfs::{Access, DirEntry, StatBuf};

/// `lseek` origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// From the current offset.
    Cur,
    /// From the end of the file.
    End,
}

/// A decoded system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// The null syscall; also what nullified calls become.
    Getpid,
    /// Parent pid.
    Getppid,
    /// Caller's uid.
    Getuid,
    /// Look up metadata by path (following symlinks).
    Stat(String),
    /// Look up metadata by path (not following the final symlink).
    Lstat(String),
    /// Metadata of an open fd.
    Fstat(usize),
    /// Open (and possibly create) a file.
    Open(String, OpenFlags, u16),
    /// Close an fd.
    Close(usize),
    /// Read up to `len` bytes at the current offset.
    Read(usize, usize),
    /// Write bytes at the current offset.
    Write(usize, Vec<u8>),
    /// Positioned read (no offset change).
    Pread(usize, usize, u64),
    /// Positioned write (no offset change).
    Pwrite(usize, Vec<u8>, u64),
    /// Move the file offset.
    Lseek(usize, i64, Whence),
    /// Duplicate an fd.
    Dup(usize),
    /// Create a directory.
    Mkdir(String, u16),
    /// Remove an empty directory.
    Rmdir(String),
    /// Remove a file name.
    Unlink(String),
    /// Create a hard link (old, new).
    Link(String, String),
    /// Create a symbolic link (target, linkpath).
    Symlink(String, String),
    /// Read a symlink's target.
    Readlink(String),
    /// Rename (old, new).
    Rename(String, String),
    /// Truncate a path to a length.
    Truncate(String, u64),
    /// Check accessibility.
    AccessCheck(String, Access),
    /// List a directory.
    Readdir(String),
    /// Change permission bits.
    Chmod(String, u16),
    /// Change ownership.
    Chown(String, u32, u32),
    /// Change working directory.
    Chdir(String),
    /// Report the working directory.
    Getcwd,
    /// Set the file-creation mask; returns the old one.
    Umask(u16),
    /// Create a child process.
    Fork,
    /// Replace the program image (simulated: records the name).
    Exec(String),
    /// Exit with a status.
    Exit(i32),
    /// Wait for any child to exit.
    Wait,
    /// Send a signal.
    Kill(Pid, Signal),
    /// Poll and clear pending signals.
    SigPending,
    /// Create a pipe; returns (read fd, write fd).
    Pipe,
    /// The new call the identity box adds: the caller's high-level name
    /// (paper, Section 3). Outside a box it reports the Unix account.
    GetUserName,
}

impl Syscall {
    /// A short name for traces and statistics.
    pub fn name(&self) -> &'static str {
        use Syscall::*;
        match self {
            Getpid => "getpid",
            Getppid => "getppid",
            Getuid => "getuid",
            Stat(_) => "stat",
            Lstat(_) => "lstat",
            Fstat(_) => "fstat",
            Open(..) => "open",
            Close(_) => "close",
            Read(..) => "read",
            Write(..) => "write",
            Pread(..) => "pread",
            Pwrite(..) => "pwrite",
            Lseek(..) => "lseek",
            Dup(_) => "dup",
            Mkdir(..) => "mkdir",
            Rmdir(_) => "rmdir",
            Unlink(_) => "unlink",
            Link(..) => "link",
            Symlink(..) => "symlink",
            Readlink(_) => "readlink",
            Rename(..) => "rename",
            Truncate(..) => "truncate",
            AccessCheck(..) => "access",
            Readdir(_) => "readdir",
            Chmod(..) => "chmod",
            Chown(..) => "chown",
            Chdir(_) => "chdir",
            Getcwd => "getcwd",
            Umask(_) => "umask",
            Fork => "fork",
            Exec(_) => "exec",
            Exit(_) => "exit",
            Wait => "wait",
            Kill(..) => "kill",
            SigPending => "sigpending",
            Pipe => "pipe",
            GetUserName => "get_user_name",
        }
    }

    /// True for calls that name a path (the ones the identity box must
    /// run ACL checks for).
    pub fn is_path_call(&self) -> bool {
        use Syscall::*;
        matches!(
            self,
            Stat(_)
                | Lstat(_)
                | Open(..)
                | Mkdir(..)
                | Rmdir(_)
                | Unlink(_)
                | Link(..)
                | Symlink(..)
                | Readlink(_)
                | Rename(..)
                | Truncate(..)
                | AccessCheck(..)
                | Readdir(_)
                | Chmod(..)
                | Chown(..)
                | Chdir(_)
                | Exec(_)
        )
    }
}

/// The result of a successful system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysRet {
    /// No interesting value (close, mkdir, ...).
    Unit,
    /// A small integer (pid, fd, count, old umask, uid...).
    Num(i64),
    /// Bytes read.
    Data(Vec<u8>),
    /// A path or name (getcwd, readlink, get_user_name).
    Text(String),
    /// File metadata.
    Stat(StatBuf),
    /// Directory listing.
    Entries(Vec<DirEntry>),
    /// A reaped child: (pid, exit status).
    Reaped(Pid, i32),
    /// Pending signals, oldest first.
    Signals(Vec<Signal>),
    /// A pipe's (read fd, write fd) pair.
    PipeFds(usize, usize),
    /// The identity reported by `get_user_name`.
    Name(Identity),
}

impl SysRet {
    /// Extract a numeric result; panics on mismatch (test helper).
    pub fn num(&self) -> i64 {
        match self {
            SysRet::Num(n) => *n,
            other => panic!("expected Num, got {other:?}"),
        }
    }

    /// Extract data; panics on mismatch (test helper).
    pub fn data(&self) -> &[u8] {
        match self {
            SysRet::Data(d) => d,
            other => panic!("expected Data, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Syscall::Getpid.name(), "getpid");
        assert_eq!(Syscall::Stat("/x".into()).name(), "stat");
        assert_eq!(Syscall::GetUserName.name(), "get_user_name");
    }

    #[test]
    fn path_call_classification() {
        assert!(Syscall::Open("/f".into(), OpenFlags::rdonly(), 0).is_path_call());
        assert!(Syscall::Rename("/a".into(), "/b".into()).is_path_call());
        assert!(!Syscall::Getpid.is_path_call());
        assert!(!Syscall::Read(0, 10).is_path_call());
        assert!(!Syscall::GetUserName.is_path_call());
    }

    #[test]
    fn sysret_helpers() {
        assert_eq!(SysRet::Num(5).num(), 5);
        assert_eq!(SysRet::Data(vec![1, 2]).data(), &[1, 2]);
    }
}
