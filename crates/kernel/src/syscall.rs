//! The typed system-call interface.
//!
//! This is the boundary the interposition agent traps: every action a
//! guest program can take is one of these calls. The register-level
//! encoding (syscall numbers, argument marshalling through guest memory)
//! lives in `idbox-interpose`; the kernel itself only sees these typed
//! values.

use crate::process::{OpenFlags, Pid, Signal};
use idbox_types::Identity;
use idbox_vfs::{Access, DirEntry, ExtentList, StatBuf};

/// `lseek` origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// From the current offset.
    Cur,
    /// From the end of the file.
    End,
}

/// A decoded system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Syscall {
    /// The null syscall; also what nullified calls become.
    Getpid,
    /// Parent pid.
    Getppid,
    /// Caller's uid.
    Getuid,
    /// Look up metadata by path (following symlinks).
    Stat(String),
    /// Look up metadata by path (not following the final symlink).
    Lstat(String),
    /// Metadata of an open fd.
    Fstat(usize),
    /// Open (and possibly create) a file.
    Open(String, OpenFlags, u16),
    /// Close an fd.
    Close(usize),
    /// Read up to `len` bytes at the current offset.
    Read(usize, usize),
    /// Write bytes at the current offset.
    Write(usize, Vec<u8>),
    /// Positioned read (no offset change).
    Pread(usize, usize, u64),
    /// Positioned write (no offset change).
    Pwrite(usize, Vec<u8>, u64),
    /// Move the file offset.
    Lseek(usize, i64, Whence),
    /// Duplicate an fd.
    Dup(usize),
    /// Create a directory.
    Mkdir(String, u16),
    /// Remove an empty directory.
    Rmdir(String),
    /// Remove a file name.
    Unlink(String),
    /// Create a hard link (old, new).
    Link(String, String),
    /// Create a symbolic link (target, linkpath).
    Symlink(String, String),
    /// Read a symlink's target.
    Readlink(String),
    /// Rename (old, new).
    Rename(String, String),
    /// Truncate a path to a length.
    Truncate(String, u64),
    /// Check accessibility.
    AccessCheck(String, Access),
    /// List a directory.
    Readdir(String),
    /// Change permission bits.
    Chmod(String, u16),
    /// Change ownership.
    Chown(String, u32, u32),
    /// Change working directory.
    Chdir(String),
    /// Report the working directory.
    Getcwd,
    /// Set the file-creation mask; returns the old one.
    Umask(u16),
    /// Create a child process.
    Fork,
    /// Replace the program image (simulated: records the name).
    Exec(String),
    /// Exit with a status.
    Exit(i32),
    /// Wait for any child to exit.
    Wait,
    /// Send a signal.
    Kill(Pid, Signal),
    /// Poll and clear pending signals.
    SigPending,
    /// Create a pipe; returns (read fd, write fd).
    Pipe,
    /// The new call the identity box adds: the caller's high-level name
    /// (paper, Section 3). Outside a box it reports the Unix account.
    GetUserName,
    /// Read one variable from the process's environment (simulated:
    /// the supervisor seeds the table, children inherit it on fork).
    Getenv(String),
    /// Positioned read returning borrowed extents instead of copied
    /// bytes (`fd`, `len`, `off`): the zero-copy data plane's read
    /// primitive. Like `pread`, the fd offset does not move.
    Preadx(usize, usize, u64),
}

impl Syscall {
    /// A short name for traces and statistics.
    pub fn name(&self) -> &'static str {
        Self::NAMES[self.slot()]
    }

    /// All syscall names, one per variant, in declaration order. The
    /// kernel's statistics table is indexed by [`Syscall::slot`], which
    /// must agree with this array (checked by a test below).
    pub const NAMES: [&'static str; 39] = [
        "getpid",
        "getppid",
        "getuid",
        "stat",
        "lstat",
        "fstat",
        "open",
        "close",
        "read",
        "write",
        "pread",
        "pwrite",
        "lseek",
        "dup",
        "mkdir",
        "rmdir",
        "unlink",
        "link",
        "symlink",
        "readlink",
        "rename",
        "truncate",
        "access",
        "readdir",
        "chmod",
        "chown",
        "chdir",
        "getcwd",
        "umask",
        "fork",
        "exec",
        "exit",
        "wait",
        "kill",
        "sigpending",
        "pipe",
        "get_user_name",
        "getenv",
        "preadx",
    ];

    /// This call's index into [`Syscall::NAMES`] (and into the kernel's
    /// fixed statistics table).
    pub fn slot(&self) -> usize {
        use Syscall::*;
        match self {
            Getpid => 0,
            Getppid => 1,
            Getuid => 2,
            Stat(_) => 3,
            Lstat(_) => 4,
            Fstat(_) => 5,
            Open(..) => 6,
            Close(_) => 7,
            Read(..) => 8,
            Write(..) => 9,
            Pread(..) => 10,
            Pwrite(..) => 11,
            Lseek(..) => 12,
            Dup(_) => 13,
            Mkdir(..) => 14,
            Rmdir(_) => 15,
            Unlink(_) => 16,
            Link(..) => 17,
            Symlink(..) => 18,
            Readlink(_) => 19,
            Rename(..) => 20,
            Truncate(..) => 21,
            AccessCheck(..) => 22,
            Readdir(_) => 23,
            Chmod(..) => 24,
            Chown(..) => 25,
            Chdir(_) => 26,
            Getcwd => 27,
            Umask(_) => 28,
            Fork => 29,
            Exec(_) => 30,
            Exit(_) => 31,
            Wait => 32,
            Kill(..) => 33,
            SigPending => 34,
            Pipe => 35,
            GetUserName => 36,
            Getenv(_) => 37,
            Preadx(..) => 38,
        }
    }

    /// True for calls that observe kernel state without changing it
    /// (beyond a private fd offset), so concurrent supervisors may
    /// dispatch them under a *shared* kernel lock.
    ///
    /// The classification is deliberately conservative:
    ///
    /// * identity reads (`getpid`, `getppid`, `getuid`, `getcwd`,
    ///   `get_user_name`, `getenv`) only look at the process table;
    /// * metadata reads (`stat`, `lstat`, `fstat`, `readlink`, `access`,
    ///   `readdir`) only look at the VFS (reads are "noatime", so no
    ///   inode is touched);
    /// * data reads (`read`, `pread`) and `lseek` mutate nothing but the
    ///   calling process's own fd offset, which the kernel keeps in an
    ///   atomic so it can advance under the shared lock.
    ///
    /// Everything else — including `sigpending` (drains the queue),
    /// `umask` (swaps the mask), and pipe reads (consume bytes) — takes
    /// the exclusive path. Note that a *classified* call can still fall
    /// back to the exclusive path at dispatch time, e.g. when the path
    /// routes to a mounted driver; see `Kernel::syscall_read`.
    pub fn is_read_only(&self) -> bool {
        use Syscall::*;
        matches!(
            self,
            Getpid
                | Getppid
                | Getuid
                | Getcwd
                | GetUserName
                | Getenv(_)
                | Stat(_)
                | Lstat(_)
                | Fstat(_)
                | Readlink(_)
                | AccessCheck(..)
                | Readdir(_)
                | Read(..)
                | Pread(..)
                | Preadx(..)
                | Lseek(..)
        )
    }

    /// True for calls that name a path (the ones the identity box must
    /// run ACL checks for).
    pub fn is_path_call(&self) -> bool {
        use Syscall::*;
        matches!(
            self,
            Stat(_)
                | Lstat(_)
                | Open(..)
                | Mkdir(..)
                | Rmdir(_)
                | Unlink(_)
                | Link(..)
                | Symlink(..)
                | Readlink(_)
                | Rename(..)
                | Truncate(..)
                | AccessCheck(..)
                | Readdir(_)
                | Chmod(..)
                | Chown(..)
                | Chdir(_)
                | Exec(_)
        )
    }
}

/// The result of a successful system call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysRet {
    /// No interesting value (close, mkdir, ...).
    Unit,
    /// A small integer (pid, fd, count, old umask, uid...).
    Num(i64),
    /// Bytes read.
    Data(Vec<u8>),
    /// A path or name (getcwd, readlink, get_user_name).
    Text(String),
    /// File metadata.
    Stat(StatBuf),
    /// Directory listing.
    Entries(Vec<DirEntry>),
    /// A reaped child: (pid, exit status).
    Reaped(Pid, i32),
    /// Pending signals, oldest first.
    Signals(Vec<Signal>),
    /// A pipe's (read fd, write fd) pair.
    PipeFds(usize, usize),
    /// The identity reported by `get_user_name`.
    Name(Identity),
    /// Bytes read as borrowed extents (`preadx`): `Arc` clones of the
    /// file's chunks, no copy made. Compares by content, so chunking
    /// differences are invisible to equality-based tests.
    Extents(ExtentList),
}

impl SysRet {
    /// Extract a numeric result; panics on mismatch (test helper).
    pub fn num(&self) -> i64 {
        match self {
            SysRet::Num(n) => *n,
            other => panic!("expected Num, got {other:?}"),
        }
    }

    /// Extract data; panics on mismatch (test helper).
    pub fn data(&self) -> &[u8] {
        match self {
            SysRet::Data(d) => d,
            other => panic!("expected Data, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Syscall::Getpid.name(), "getpid");
        assert_eq!(Syscall::Stat("/x".into()).name(), "stat");
        assert_eq!(Syscall::GetUserName.name(), "get_user_name");
    }

    #[test]
    fn path_call_classification() {
        assert!(Syscall::Open("/f".into(), OpenFlags::rdonly(), 0).is_path_call());
        assert!(Syscall::Rename("/a".into(), "/b".into()).is_path_call());
        assert!(!Syscall::Getpid.is_path_call());
        assert!(!Syscall::Read(0, 10).is_path_call());
        assert!(!Syscall::GetUserName.is_path_call());
        assert!(!Syscall::Getenv("PATH".into()).is_path_call());
    }

    #[test]
    fn read_only_classification() {
        // The shared-lock class.
        assert!(Syscall::Getpid.is_read_only());
        assert!(Syscall::Getcwd.is_read_only());
        assert!(Syscall::GetUserName.is_read_only());
        assert!(Syscall::Getenv("PATH".into()).is_read_only());
        assert!(Syscall::Stat("/x".into()).is_read_only());
        assert!(Syscall::Lstat("/x".into()).is_read_only());
        assert!(Syscall::Fstat(3).is_read_only());
        assert!(Syscall::Readlink("/x".into()).is_read_only());
        assert!(Syscall::AccessCheck("/x".into(), Access::R).is_read_only());
        assert!(Syscall::Readdir("/".into()).is_read_only());
        assert!(Syscall::Read(0, 16).is_read_only());
        assert!(Syscall::Pread(0, 16, 0).is_read_only());
        assert!(Syscall::Preadx(0, 16, 0).is_read_only());
        assert!(Syscall::Lseek(0, 0, Whence::Set).is_read_only());
        // Mutators must never be classified read-only.
        assert!(!Syscall::Open("/f".into(), OpenFlags::rdonly(), 0).is_read_only());
        assert!(!Syscall::Write(0, vec![1]).is_read_only());
        assert!(!Syscall::Close(0).is_read_only());
        assert!(!Syscall::Umask(0o022).is_read_only());
        assert!(!Syscall::SigPending.is_read_only());
        assert!(!Syscall::Fork.is_read_only());
        assert!(!Syscall::Pipe.is_read_only());
    }

    #[test]
    fn slots_and_names_agree() {
        use Syscall::*;
        let samples: Vec<Syscall> = vec![
            Getpid,
            Getppid,
            Getuid,
            Stat("/".into()),
            Lstat("/".into()),
            Fstat(0),
            Open("/".into(), OpenFlags::rdonly(), 0),
            Close(0),
            Read(0, 0),
            Write(0, vec![]),
            Pread(0, 0, 0),
            Pwrite(0, vec![], 0),
            Lseek(0, 0, Whence::Set),
            Dup(0),
            Mkdir("/".into(), 0),
            Rmdir("/".into()),
            Unlink("/".into()),
            Link("/".into(), "/".into()),
            Symlink("/".into(), "/".into()),
            Readlink("/".into()),
            Rename("/".into(), "/".into()),
            Truncate("/".into(), 0),
            AccessCheck("/".into(), Access::R),
            Readdir("/".into()),
            Chmod("/".into(), 0),
            Chown("/".into(), 0, 0),
            Chdir("/".into()),
            Getcwd,
            Umask(0),
            Fork,
            Exec("/".into()),
            Exit(0),
            Wait,
            Kill(Pid(1), Signal::Term),
            SigPending,
            Pipe,
            GetUserName,
            Getenv(String::new()),
            Preadx(0, 0, 0),
        ];
        assert_eq!(samples.len(), Syscall::NAMES.len());
        for (i, call) in samples.iter().enumerate() {
            assert_eq!(call.slot(), i, "{} out of order", call.name());
            assert_eq!(call.name(), Syscall::NAMES[i]);
        }
    }

    #[test]
    fn sysret_helpers() {
        assert_eq!(SysRet::Num(5).num(), 5);
        assert_eq!(SysRet::Data(vec![1, 2]).data(), &[1, 2]);
    }
}
