//! Property tests for the kernel: process-table and fd-table invariants
//! under random lifecycle operations.

use idbox_kernel::{Kernel, OpenFlags, Pid, ProcState, Signal, Syscall, SysRet};
use idbox_types::Errno;
use idbox_vfs::Cred;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Fork(usize),
    Exit(usize, i32),
    Wait(usize),
    Kill(usize, usize),
    Open(usize),
    Close(usize, usize),
    Write(usize, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8).prop_map(Op::Fork),
        ((0usize..8), 0i32..100).prop_map(|(p, c)| Op::Exit(p, c)),
        (0usize..8).prop_map(Op::Wait),
        ((0usize..8), (0usize..8)).prop_map(|(a, b)| Op::Kill(a, b)),
        (0usize..8).prop_map(Op::Open),
        ((0usize..8), (0usize..6)).prop_map(|(p, fd)| Op::Close(p, fd)),
        ((0usize..8), any::<u8>()).prop_map(|(p, b)| Op::Write(p, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random lifecycle storms never corrupt the kernel: no panics, no
    /// zombie leaks beyond un-reaped children, inode pins balanced after
    /// all processes exit.
    #[test]
    fn process_storm_preserves_invariants(ops in proptest::collection::vec(op(), 1..80)) {
        let mut k = Kernel::new();
        let base_inodes = k.vfs().live_inodes();
        let root_proc = k.spawn(Cred::new(1000, 1000), "/tmp", "storm").unwrap();
        let mut pids: Vec<Pid> = vec![root_proc];
        for op in ops {
            match op {
                Op::Fork(i) => {
                    let p = pids[i % pids.len()];
                    if let Ok(SysRet::Num(child)) = k.syscall(p, Syscall::Fork) {
                        pids.push(Pid(child as u32));
                    }
                }
                Op::Exit(i, code) => {
                    let p = pids[i % pids.len()];
                    let _ = k.syscall(p, Syscall::Exit(code));
                }
                Op::Wait(i) => {
                    let p = pids[i % pids.len()];
                    if let Ok(SysRet::Reaped(child, _)) = k.syscall(p, Syscall::Wait) {
                        pids.retain(|&q| q != child);
                    }
                }
                Op::Kill(a, b) => {
                    let (pa, pb) = (pids[a % pids.len()], pids[b % pids.len()]);
                    let _ = k.syscall(pa, Syscall::Kill(pb, Signal::Kill));
                }
                Op::Open(i) => {
                    let p = pids[i % pids.len()];
                    let _ = k.syscall(
                        p,
                        Syscall::Open("/tmp/shared".into(), OpenFlags::rdwr_create(), 0o666),
                    );
                }
                Op::Close(i, fd) => {
                    let p = pids[i % pids.len()];
                    let _ = k.syscall(p, Syscall::Close(fd));
                }
                Op::Write(i, byte) => {
                    let p = pids[i % pids.len()];
                    let _ = k.syscall(p, Syscall::Write(0, vec![byte]));
                }
            }
            // Invariant: every tracked pid still resolves (alive or
            // zombie) until reaped.
            for &p in &pids {
                prop_assert!(k.process(p).is_ok(), "{p} vanished without a wait");
            }
        }
        // Drain: kill everything (as root-owned init would), reap from
        // init, and verify the file's inode pins unwind.
        let all: Vec<Pid> = pids.clone();
        for p in all {
            let _ = k.syscall(p, Syscall::Exit(0));
        }
        // Everything reparents to init (pid 1); reap until ECHILD.
        loop {
            match k.syscall(Pid(1), Syscall::Wait) {
                Ok(_) => {}
                Err(Errno::ECHILD) => break,
                Err(Errno::EAGAIN) => break, // only live procs left: none
                Err(e) => prop_assert!(false, "unexpected {e}"),
            }
        }
        // Only init (and maybe /tmp/shared with nlink 1) remain: pins
        // are balanced, so unlinking frees the inode.
        let root = k.vfs().root();
        let _ = k.vfs_mut().unlink(root, "/tmp/shared", &Cred::ROOT);
        prop_assert_eq!(k.vfs().live_inodes(), base_inodes);
    }

    /// fds are process-private: numbers from one process never work in
    /// another (freshly spawned) one.
    #[test]
    fn fds_are_per_process(n_opens in 1usize..6) {
        let mut k = Kernel::new();
        let a = k.spawn(Cred::ROOT, "/tmp", "a").unwrap();
        let b = k.spawn(Cred::ROOT, "/tmp", "b").unwrap();
        let mut fds = Vec::new();
        for i in 0..n_opens {
            let ret = k
                .syscall(a, Syscall::Open(
                    format!("/tmp/f{i}"),
                    OpenFlags::rdwr_create(),
                    0o644,
                ))
                .unwrap();
            fds.push(ret.num() as usize);
        }
        for fd in fds {
            prop_assert_eq!(
                k.syscall(b, Syscall::Close(fd)),
                Err(Errno::EBADF),
                "fd {} leaked across processes", fd
            );
            k.syscall(a, Syscall::Close(fd)).unwrap();
        }
    }

    /// Zombies hold their exit codes faithfully for any code value.
    #[test]
    fn exit_codes_roundtrip(code in any::<i32>()) {
        let mut k = Kernel::new();
        let parent = k.spawn(Cred::ROOT, "/tmp", "p").unwrap();
        let child = Pid(k.syscall(parent, Syscall::Fork).unwrap().num() as u32);
        k.syscall(child, Syscall::Exit(code)).unwrap();
        prop_assert_eq!(
            k.process(child).unwrap().state,
            ProcState::Zombie(code)
        );
        match k.syscall(parent, Syscall::Wait).unwrap() {
            SysRet::Reaped(p, c) => {
                prop_assert_eq!(p, child);
                prop_assert_eq!(c, code);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
