//! Cross-shard correctness: sharding is a pure concurrency
//! optimization, never a semantic change.
//!
//! `Kernel::with_shards(1)` is, by construction, a behavioral twin of
//! the old single-lock kernel: one process shard, one vfs shard, every
//! syscall serialized through the same locks the monolithic kernel
//! held. This property test replays identical random syscall
//! transcripts — process lifecycle, fd traffic, pipes, directory
//! churn, renames, symlinks — against a single-shard kernel and a
//! deliberately odd-sized multi-shard one (5 shards, so pid and inode
//! hashing scatter unevenly), and requires byte-identical results at
//! every step. Pid allocation, inode numbering, zombie reaping order,
//! and pipe-slot reuse are all global allocators precisely so this
//! holds.
//!
//! Uses the `idbox-testkit` runner, so `IDBOX_PROP_SEED` (pinned in
//! `ci.sh`) reproduces a failing transcript exactly.

use idbox_kernel::{Kernel, OpenFlags, Pid, Signal, Syscall, SysRet, Whence};
use proptest::{run_cases, PropError, ProptestConfig, TestRng};
use idbox_vfs::Cred;

const NPROCS: u64 = 6;
const NFDS: u64 = 8;
const NPATHS: u64 = 5;

fn file_path(i: u64) -> String {
    format!("/tmp/f{i}")
}

fn dir_path(i: u64) -> String {
    format!("/tmp/d{i}")
}

/// Draw one syscall, with the caller picked from the replay's live pid
/// list. Both kernels see the exact same call because their pid lists
/// evolve identically (asserted after every step).
fn random_call(rng: &mut TestRng, pids: &[Pid]) -> (Pid, Syscall) {
    let caller = pids[rng.below(NPROCS) as usize % pids.len()];
    let call = match rng.below(23) {
        0 => Syscall::Fork,
        1 => Syscall::Exit(rng.below(100) as i32),
        2 => Syscall::Wait,
        3 => {
            let target = pids[rng.below(NPROCS) as usize % pids.len()];
            Syscall::Kill(target, Signal::Term)
        }
        4 => {
            let flags = if rng.bool() {
                OpenFlags::rdwr_create()
            } else {
                OpenFlags::rdonly()
            };
            Syscall::Open(file_path(rng.below(NPATHS)), flags, 0o644)
        }
        5 => Syscall::Close(rng.below(NFDS) as usize),
        6 => Syscall::Read(rng.below(NFDS) as usize, rng.in_range(1, 64) as usize),
        7 => {
            let byte = rng.below(256) as u8;
            Syscall::Write(rng.below(NFDS) as usize, vec![byte; 3])
        }
        8 => Syscall::Lseek(
            rng.below(NFDS) as usize,
            rng.in_range(0, 64) as i64 - 8,
            Whence::Set,
        ),
        9 => Syscall::Dup(rng.below(NFDS) as usize),
        10 => Syscall::Fstat(rng.below(NFDS) as usize),
        11 => Syscall::Stat(file_path(rng.below(NPATHS))),
        12 => Syscall::Mkdir(dir_path(rng.below(NPATHS)), 0o755),
        13 => Syscall::Rmdir(dir_path(rng.below(NPATHS))),
        14 => Syscall::Unlink(file_path(rng.below(NPATHS))),
        15 => Syscall::Rename(file_path(rng.below(NPATHS)), file_path(rng.below(NPATHS))),
        16 => Syscall::Symlink(
            file_path(rng.below(NPATHS)),
            format!("/tmp/ln{}", rng.below(NPATHS)),
        ),
        17 => Syscall::Readdir("/tmp".into()),
        18 => Syscall::Chdir(dir_path(rng.below(NPATHS))),
        19 => Syscall::Pipe,
        20 => Syscall::Umask(rng.below(0o777) as u16),
        21 => Syscall::Getcwd,
        _ => Syscall::SigPending,
    };
    (caller, call)
}

/// Apply the result to the replay's pid bookkeeping (fork grows the
/// list, wait removes the reaped child).
fn track(pids: &mut Vec<Pid>, call: &Syscall, result: &Result<SysRet, idbox_types::Errno>) {
    match (call, result) {
        (Syscall::Fork, Ok(SysRet::Num(child))) => pids.push(Pid(*child as u32)),
        (Syscall::Wait, Ok(SysRet::Reaped(child, _))) => {
            pids.retain(|&q| q != *child);
        }
        _ => {}
    }
}

/// The same syscall transcript against 1 shard and 5 shards yields
/// identical results at every single step — pids, fds, errnos, stat
/// buffers, directory listings, everything.
#[test]
fn sharded_kernel_is_transcript_identical_to_single_shard() {
    run_cases(
        ProptestConfig::with_cases(48),
        "shard_equivalence::transcript",
        |rng| {
            let mut mono = Kernel::with_shards(1);
            let mut sharded = Kernel::with_shards(5);
            let cred = Cred::new(1000, 1000);
            let pid_m = mono.spawn(cred, "/tmp", "eq").unwrap();
            let pid_s = sharded.spawn(cred, "/tmp", "eq").unwrap();
            if pid_m != pid_s {
                return Err(PropError::Fail(format!(
                    "spawn diverged before any ops ran: {pid_m} vs {pid_s}"
                )));
            }
            let mut pids_m: Vec<Pid> = vec![pid_m];
            let mut pids_s: Vec<Pid> = vec![pid_s];

            let nops = rng.in_range(1, 120);
            for step in 0..nops {
                let draw = rng.next_u64();
                let (pm, call_m) = random_call(&mut TestRng::new(draw), &pids_m);
                let (ps, call_s) = random_call(&mut TestRng::new(draw), &pids_s);
                if pm != ps || call_m != call_s {
                    return Err(PropError::Fail(format!(
                        "step {step}: generated calls diverged — pid lists differ"
                    )));
                }
                let rm = mono.syscall(pm, call_m.clone());
                let rs = sharded.syscall(ps, call_s.clone());
                if format!("{rm:?}") != format!("{rs:?}") {
                    return Err(PropError::Fail(format!(
                        "step {step}: {call_m:?} from {pm} diverged:\n  \
                         shards=1: {rm:?}\n  shards=5: {rs:?}"
                    )));
                }
                track(&mut pids_m, &call_m, &rm);
                track(&mut pids_s, &call_s, &rs);
                if pids_m != pids_s {
                    return Err(PropError::Fail(format!(
                        "step {step}: live pid sets diverged: {pids_m:?} vs {pids_s:?}"
                    )));
                }
            }

            // Terminal state agrees too: same process table, same
            // inode population.
            if mono.pids() != sharded.pids() {
                return Err(PropError::Fail(format!(
                    "final pid tables diverged: {:?} vs {:?}",
                    mono.pids(),
                    sharded.pids()
                )));
            }
            if mono.vfs().live_inodes() != sharded.vfs().live_inodes() {
                return Err(PropError::Fail(format!(
                    "final inode counts diverged: {} vs {}",
                    mono.vfs().live_inodes(),
                    sharded.vfs().live_inodes()
                )));
            }
            Ok(())
        },
    );
}
