//! Identity-mapping methods: the baselines of Figure 1.
//!
//! Once a grid user has proven a global identity, the site must somehow
//! map it into the local system. This crate implements every method the
//! paper surveys (Section 2) behind one [`IdentityMapper`] trait —
//! single account, untrusted account, private accounts with a gridmap,
//! group accounts, anonymous per-job accounts, account pools — plus
//! identity boxing itself, so the [`probe`] harness can *measure* the
//! property matrix of Figure 1 (privilege required, owner protection,
//! privacy, sharing, return, administrative burden) rather than assert
//! it.

pub mod methods;
pub mod probe;
mod session;

pub use methods::{
    AccountPool, AnonymousAccounts, GroupAccounts, IdentityBoxMapper, PrivateAccounts,
    SingleAccount, UntrustedAccount,
};
pub use probe::{probe_method, MethodProperties, Tri};
pub use session::{IdentityMapper, MapError, Session};
