//! Anonymous per-job accounts (Condor-on-NT style).

use crate::methods::{create_account_with_home, destroy_account_with_home};
use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_interpose::SharedKernel;
use idbox_types::Principal;

/// A fresh account for every single job, destroyed when the job ends.
/// Needs privilege but no per-user administration; gives privacy but no
/// sharing — and an ID means nothing after the job completes, so there
/// is no returning to stored data.
#[derive(Default)]
pub struct AnonymousAccounts {
    serial: u32,
}

impl AnonymousAccounts {
    /// A fresh generator.
    pub fn new() -> Self {
        AnonymousAccounts::default()
    }
}

impl IdentityMapper for AnonymousAccounts {
    fn name(&self) -> &'static str {
        "anonymous"
    }

    fn requires_privilege(&self) -> bool {
        true
    }

    fn burden_label(&self) -> &'static str {
        "-"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        self.serial += 1;
        let account = format!("anon{}", self.serial);
        let (cred, home) = create_account_with_home(kernel, &account)?;
        Ok(Session {
            principal: principal.clone(),
            account,
            cred,
            home,
            runner: Runner::Plain,
        })
    }

    fn release(&mut self, kernel: &SharedKernel, session: Session) -> Result<(), MapError> {
        destroy_account_with_home(kernel, &session.account)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::Kernel;
    use idbox_types::AuthMethod;
    use idbox_vfs::Cred;

    #[test]
    fn every_job_fresh_account() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = AnonymousAccounts::new();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let s1 = m.admit(&kernel, &fred).unwrap();
        let s2 = m.admit(&kernel, &fred).unwrap();
        // Even the same user gets distinct accounts per job.
        assert_ne!(s1.account, s2.account);
        assert_ne!(s1.cred.uid, s2.cred.uid);
        assert_eq!(m.interventions(), 0);
    }

    #[test]
    fn release_destroys_account_and_home() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = AnonymousAccounts::new();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let s = m.admit(&kernel, &fred).unwrap();
        let (account, home) = (s.account.clone(), s.home.clone());
        // The job leaves data behind...
        {
            let mut k = kernel.lock();
            let root = k.vfs().root();
            k.vfs_mut()
                .write_file(root, &format!("{home}/out.dat"), b"x", &Cred::ROOT)
                .unwrap();
        }
        m.release(&kernel, s).unwrap();
        let mut k = kernel.lock();
        assert!(k.accounts().lookup(&account).is_none());
        let root = k.vfs().root();
        assert!(k.vfs_mut().read_file(root, &format!("{home}/out.dat"), &Cred::ROOT).is_err());
    }
}
