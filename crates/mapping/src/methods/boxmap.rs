//! Identity boxing as a mapping method.

use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_acl::Rights;
use idbox_core::IdentityBox;
use idbox_interpose::SharedKernel;
use idbox_types::Principal;
use idbox_vfs::Cred;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Map every visitor into an identity box named by their principal:
/// named protection domains created on the fly, no account database
/// consulted, no privileges required, and sharing expressed directly in
/// terms of grid identities through ACLs.
pub struct IdentityBoxMapper {
    sup_cred: Cred,
    boxes: BTreeMap<String, Arc<IdentityBox>>,
}

impl IdentityBoxMapper {
    /// Boxes are supervised by the (unprivileged) operator credential.
    pub fn new(sup_cred: Cred) -> Self {
        IdentityBoxMapper {
            sup_cred,
            boxes: BTreeMap::new(),
        }
    }
}

impl IdentityMapper for IdentityBoxMapper {
    fn name(&self) -> &'static str {
        "identity box"
    }

    fn requires_privilege(&self) -> bool {
        false
    }

    fn burden_label(&self) -> &'static str {
        "-"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        let key = principal.qualified();
        let b = match self.boxes.get(&key) {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(
                    IdentityBox::create(
                        Arc::clone(kernel),
                        principal.to_identity(),
                        self.sup_cred,
                    )
                    .map_err(MapError::Sys)?,
                );
                self.boxes.insert(key, Arc::clone(&b));
                b
            }
        };
        Ok(Session {
            principal: principal.clone(),
            account: format!("(box) {}", principal),
            cred: self.sup_cred,
            home: b.home().to_string(),
            runner: Runner::Boxed(b),
        })
    }

    fn grant(
        &mut self,
        kernel: &SharedKernel,
        session: &Session,
        other: &Principal,
        path: &str,
    ) -> Result<(), MapError> {
        // The visitor themself extends rights by editing the ACL of the
        // directory containing `path` — possible because they hold the A
        // right in their own home, and expressed purely in grid names.
        let Runner::Boxed(b) = &session.runner else {
            return Err(MapError::Unsupported);
        };
        let dir = idbox_vfs::path::split_parent(path)
            .map(|(d, _)| d.to_string())
            .ok_or(MapError::Unsupported)?;
        let other_name = other.qualified();
        let acl_path = format!("{dir}/{}", idbox_types::ACL_FILE_NAME);
        let code = b
            .run("setacl", move |ctx| {
                let Ok(acl) = ctx.read_file(&acl_path) else {
                    return 1;
                };
                let mut text = String::from_utf8_lossy(&acl).into_owned();
                text.push_str(&format!(
                    "{} {}\n",
                    other_name,
                    (Rights::READ | Rights::LIST).letters()
                ));
                match ctx.write_file(&acl_path, text.as_bytes()) {
                    Ok(()) => 0,
                    Err(_) => 1,
                }
            })
            .map_err(MapError::Sys)?
            .0;
        let _ = kernel;
        if code == 0 {
            Ok(())
        } else {
            Err(MapError::Unsupported)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::{Account, Kernel};
    use idbox_types::AuthMethod;

    fn setup() -> (SharedKernel, IdentityBoxMapper) {
        let mut k = Kernel::new();
        k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
        let kernel = idbox_interpose::share(k);
        (kernel, IdentityBoxMapper::new(Cred::new(1000, 1000)))
    }

    #[test]
    fn admit_without_accounts_or_privilege() {
        let (kernel, mut m) = setup();
        let before = kernel.lock().accounts().len();
        let fred = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred");
        let s = m.admit(&kernel, &fred).unwrap();
        assert!(matches!(s.runner, Runner::Boxed(_)));
        // No local account was created.
        assert_eq!(kernel.lock().accounts().len(), before);
        assert_eq!(m.interventions(), 0);
        assert!(!m.requires_privilege());
    }

    #[test]
    fn grid_name_sharing_works() {
        let (kernel, mut m) = setup();
        let fred = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred");
        let george = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=George");
        let sf = m.admit(&kernel, &fred).unwrap();
        let data = format!("{}/data.txt", sf.home);
        let data2 = data.clone();
        sf.run(&kernel, "write", move |ctx| {
            ctx.write_file(&data2, b"shared").unwrap();
            0
        })
        .unwrap();
        // Before the grant, George is denied.
        let sg = m.admit(&kernel, &george).unwrap();
        let data3 = data.clone();
        let denied = sg
            .run(&kernel, "probe", move |ctx| {
                i32::from(ctx.read_file(&data3).is_ok())
            })
            .unwrap();
        assert_eq!(denied, 0);
        // Fred grants to George's grid name; now George reads.
        m.grant(&kernel, &sf, &george, &data).unwrap();
        let data4 = data.clone();
        let allowed = sg
            .run(&kernel, "probe", move |ctx| {
                i32::from(ctx.read_file(&data4).is_ok())
            })
            .unwrap();
        assert_eq!(allowed, 1);
    }
}
