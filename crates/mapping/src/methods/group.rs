//! Shared group accounts (the Grid3 approach).

use crate::methods::create_account_with_home;
use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_acl::SubjectPattern;
use idbox_interpose::SharedKernel;
use idbox_types::{Identity, Principal};
use idbox_vfs::Cred;

/// A small number of accounts, each corresponding to a well-known
/// experiment or collaboration; principals are matched to groups by
/// wildcard patterns. Within one group nothing is private and all data
/// is shared; between groups there is privacy but no sharing — the
/// "fixed" policies of Figure 1.
pub struct GroupAccounts {
    groups: Vec<(SubjectPattern, String)>,
    interventions: u64,
}

impl GroupAccounts {
    /// Create the group accounts up front (one administrative action per
    /// group).
    pub fn with_groups(
        kernel: &SharedKernel,
        groups: &[(&str, &str)],
    ) -> Result<Self, MapError> {
        let mut out = GroupAccounts {
            groups: Vec::new(),
            interventions: 0,
        };
        for (pattern, account) in groups {
            out.interventions += 1;
            create_account_with_home(kernel, account)?;
            out.groups
                .push((SubjectPattern::new(*pattern), account.to_string()));
        }
        Ok(out)
    }

    fn group_of(&self, principal: &Principal) -> Option<&str> {
        let id = Identity::new(principal.qualified());
        self.groups
            .iter()
            .find(|(p, _)| p.matches(&id))
            .map(|(_, a)| a.as_str())
    }
}

impl IdentityMapper for GroupAccounts {
    fn name(&self) -> &'static str {
        "group"
    }

    fn requires_privilege(&self) -> bool {
        true
    }

    fn burden_label(&self) -> &'static str {
        "per group"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        let account = self
            .group_of(principal)
            .ok_or(MapError::NeedsAdministrator)?
            .to_string();
        let k = kernel.lock();
        let accounts = k.accounts();
        let acct = accounts
            .lookup(&account)
            .ok_or(MapError::NeedsAdministrator)?;
        Ok(Session {
            principal: principal.clone(),
            account: acct.name.clone(),
            cred: Cred::new(acct.uid, acct.gid),
            home: acct.home.clone(),
            runner: Runner::Plain,
        })
    }

    fn grant(
        &mut self,
        _kernel: &SharedKernel,
        session: &Session,
        other: &Principal,
        _path: &str,
    ) -> Result<(), MapError> {
        // Sharing exists exactly within the group: same account, nothing
        // to do. Across groups there is no mechanism at all.
        let mine = self.group_of(&session.principal);
        let theirs = self.group_of(other);
        if mine.is_some() && mine == theirs {
            Ok(())
        } else {
            Err(MapError::Unsupported)
        }
    }

    fn interventions(&self) -> u64 {
        self.interventions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::Kernel;
    use idbox_types::AuthMethod;

    fn setup() -> (SharedKernel, GroupAccounts) {
        let kernel = idbox_interpose::share(Kernel::new());
        let m = GroupAccounts::with_groups(
            &kernel,
            &[
                ("globus:/O=UnivNowhere/*", "grid_un"),
                ("globus:/O=Elsewhere/*", "grid_el"),
            ],
        )
        .unwrap();
        (kernel, m)
    }

    #[test]
    fn same_org_same_account() {
        let (kernel, mut m) = setup();
        let fred = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred");
        let george = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=George");
        let eve = Principal::new(AuthMethod::Globus, "/O=Elsewhere/CN=Eve");
        let s1 = m.admit(&kernel, &fred).unwrap();
        let s2 = m.admit(&kernel, &george).unwrap();
        let s3 = m.admit(&kernel, &eve).unwrap();
        assert_eq!(s1.cred, s2.cred);
        assert_ne!(s1.cred, s3.cred);
        assert_eq!(m.interventions(), 2); // one per group, not per user
    }

    #[test]
    fn unmatched_principal_needs_admin() {
        let (kernel, mut m) = setup();
        let stranger = Principal::new(AuthMethod::Kerberos, "x@unknown.org");
        assert_eq!(
            m.admit(&kernel, &stranger).unwrap_err(),
            MapError::NeedsAdministrator
        );
    }

    #[test]
    fn grant_within_group_only() {
        let (kernel, mut m) = setup();
        let fred = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred");
        let george = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=George");
        let eve = Principal::new(AuthMethod::Globus, "/O=Elsewhere/CN=Eve");
        let s = m.admit(&kernel, &fred).unwrap();
        assert!(m.grant(&kernel, &s, &george, "/f").is_ok());
        assert_eq!(
            m.grant(&kernel, &s, &eve, "/f").unwrap_err(),
            MapError::Unsupported
        );
    }
}
