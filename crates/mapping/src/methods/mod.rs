//! The seven mapping methods of Figure 1.

mod anonymous;
mod boxmap;
mod group;
mod pool;
mod private;
mod single;
mod untrusted;

pub use anonymous::AnonymousAccounts;
pub use boxmap::IdentityBoxMapper;
pub use group::GroupAccounts;
pub use pool::AccountPool;
pub use private::PrivateAccounts;
pub use single::SingleAccount;
pub use untrusted::UntrustedAccount;

use idbox_interpose::SharedKernel;
use idbox_kernel::Account;
use idbox_types::SysResult;
use idbox_vfs::Cred;

/// Create a local account plus a 0700 home directory owned by it.
/// This is the root-only action whose frequency Figure 1's burden column
/// measures.
pub(crate) fn create_account_with_home(
    kernel: &SharedKernel,
    name: &str,
) -> SysResult<(Cred, String)> {
    let mut k = kernel.lock();
    let uid = k.accounts_mut().next_free_uid();
    let account = Account::new(name, uid, uid);
    let home = account.home.clone();
    k.account_add(account)?;
    let root = k.vfs().root();
    k.vfs_mut().mkdir_all(root, &home, 0o700, &Cred::ROOT)?;
    k.vfs_mut().chown(root, &home, uid, uid, &Cred::ROOT)?;
    k.sync_passwd_file();
    Ok((Cred::new(uid, uid), home))
}

/// Remove an account and its home directory (recursive), as root.
pub(crate) fn destroy_account_with_home(kernel: &SharedKernel, name: &str) -> SysResult<()> {
    let mut k = kernel.lock();
    let Some(home) = k.accounts().lookup(name).map(|a| a.home.clone()) else {
        return Ok(());
    };
    k.account_remove(name)?;
    k.sync_passwd_file();
    let root = k.vfs().root();
    remove_tree(&mut k, root, &home)?;
    Ok(())
}

fn remove_tree(
    k: &mut idbox_kernel::Kernel,
    root: idbox_vfs::Ino,
    path: &str,
) -> SysResult<()> {
    use idbox_vfs::FileKind;
    let entries = match k.vfs_mut().readdir(root, path, &Cred::ROOT) {
        Ok(e) => e,
        Err(_) => return Ok(()), // already gone
    };
    for e in entries {
        if e.name == "." || e.name == ".." {
            continue;
        }
        let child = format!("{}/{}", path.trim_end_matches('/'), e.name);
        match e.kind {
            FileKind::Dir => remove_tree(k, root, &child)?,
            _ => {
                let _ = k.vfs_mut().unlink(root, &child, &Cred::ROOT);
            }
        }
    }
    let _ = k.vfs_mut().rmdir(root, path, &Cred::ROOT);
    Ok(())
}
