//! Account pools (Globus / Legion style).

use crate::methods::create_account_with_home;
use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_interpose::SharedKernel;
use idbox_types::Principal;
use idbox_vfs::Cred;
use std::collections::VecDeque;

/// A pool of anonymous accounts (`grid0`–`gridN`) created once by the
/// administrator and assigned to jobs on the fly. Protects the owner and
/// gives privacy, but "a given user might be grid9 today and grid33
/// tomorrow": no return, and no grid-identity-based sharing.
pub struct PoolSlot {
    account: String,
    cred: Cred,
    home: String,
}

/// The pool mapper.
pub struct AccountPool {
    free: VecDeque<PoolSlot>,
    interventions: u64,
}

impl AccountPool {
    /// Create a pool of `n` accounts named `grid0..grid{n-1}` (one batch
    /// of administrative work).
    pub fn with_size(kernel: &SharedKernel, n: usize) -> Result<Self, MapError> {
        let mut free = VecDeque::new();
        for i in 0..n {
            let account = format!("grid{i}");
            let (cred, home) = create_account_with_home(kernel, &account)?;
            free.push_back(PoolSlot {
                account,
                cred,
                home,
            });
        }
        Ok(AccountPool {
            free,
            interventions: 1, // the admin sets up the pool once
        })
    }

    /// Accounts currently unassigned.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

impl IdentityMapper for AccountPool {
    fn name(&self) -> &'static str {
        "pool"
    }

    fn requires_privilege(&self) -> bool {
        true
    }

    fn burden_label(&self) -> &'static str {
        "per pool"
    }

    fn admit(
        &mut self,
        _kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        // FIFO assignment: a released account goes to the back, so a
        // returning user almost never lands on their previous account —
        // exactly the property that breaks "return".
        let slot = self.free.pop_front().ok_or(MapError::NoAccountsAvailable)?;
        Ok(Session {
            principal: principal.clone(),
            account: slot.account,
            cred: slot.cred,
            home: slot.home,
            runner: Runner::Plain,
        })
    }

    fn release(&mut self, _kernel: &SharedKernel, session: Session) -> Result<(), MapError> {
        self.free.push_back(PoolSlot {
            account: session.account,
            cred: session.cred,
            home: session.home,
        });
        Ok(())
    }

    fn interventions(&self) -> u64 {
        self.interventions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::Kernel;
    use idbox_types::AuthMethod;

    #[test]
    fn assignment_and_exhaustion() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = AccountPool::with_size(&kernel, 2).unwrap();
        let p = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let s1 = m.admit(&kernel, &p).unwrap();
        let s2 = m.admit(&kernel, &p).unwrap();
        assert_ne!(s1.account, s2.account);
        assert_eq!(
            m.admit(&kernel, &p).unwrap_err(),
            MapError::NoAccountsAvailable
        );
        m.release(&kernel, s1).unwrap();
        assert_eq!(m.available(), 1);
        assert!(m.admit(&kernel, &p).is_ok());
        let _ = s2;
    }

    #[test]
    fn returning_user_gets_a_different_account() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = AccountPool::with_size(&kernel, 3).unwrap();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let s1 = m.admit(&kernel, &fred).unwrap();
        let first_account = s1.account.clone();
        m.release(&kernel, s1).unwrap();
        // grid9 today, grid33 tomorrow.
        let s2 = m.admit(&kernel, &fred).unwrap();
        assert_ne!(s2.account, first_account);
    }

    #[test]
    fn one_intervention_for_the_whole_pool() {
        let kernel = idbox_interpose::share(Kernel::new());
        let m = AccountPool::with_size(&kernel, 50).unwrap();
        assert_eq!(m.interventions(), 1);
        assert_eq!(m.available(), 50);
    }
}
