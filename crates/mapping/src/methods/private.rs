//! Private accounts with a gridmap file.

use crate::methods::create_account_with_home;
use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_interpose::SharedKernel;
use idbox_types::Principal;
use idbox_vfs::Cred;
use std::collections::BTreeMap;

/// One distinct local account per grid user, mapped through a "gridmap"
/// table (I-WAY's approach, still the most widespread). Gives every user
/// privacy, but a human administrator must create each account and edit
/// the map — and because visitors never learn each other's local names,
/// grid-identity-based sharing is impossible.
#[derive(Default)]
pub struct PrivateAccounts {
    gridmap: BTreeMap<String, String>,
    next_serial: u32,
    interventions: u64,
}

impl PrivateAccounts {
    /// An empty gridmap.
    pub fn new() -> Self {
        PrivateAccounts::default()
    }

    /// The gridmap contents (principal → local account), for display.
    pub fn gridmap(&self) -> &BTreeMap<String, String> {
        &self.gridmap
    }
}

impl IdentityMapper for PrivateAccounts {
    fn name(&self) -> &'static str {
        "private"
    }

    fn requires_privilege(&self) -> bool {
        true
    }

    fn burden_label(&self) -> &'static str {
        "per user"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        let account = self
            .gridmap
            .get(&principal.qualified())
            .cloned()
            .ok_or(MapError::NeedsAdministrator)?;
        let k = kernel.lock();
        let accounts = k.accounts();
        let acct = accounts
            .lookup(&account)
            .ok_or(MapError::NeedsAdministrator)?;
        Ok(Session {
            principal: principal.clone(),
            account: acct.name.clone(),
            cred: Cred::new(acct.uid, acct.gid),
            home: acct.home.clone(),
            runner: Runner::Plain,
        })
    }

    fn administer(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<(), MapError> {
        if self.gridmap.contains_key(&principal.qualified()) {
            return Ok(());
        }
        self.interventions += 1;
        self.next_serial += 1;
        let account = format!("griduser{}", self.next_serial);
        create_account_with_home(kernel, &account)?;
        self.gridmap.insert(principal.qualified(), account);
        Ok(())
    }

    fn interventions(&self) -> u64 {
        self.interventions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::Kernel;
    use idbox_types::AuthMethod;

    #[test]
    fn needs_admin_then_distinct_accounts() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = PrivateAccounts::new();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let george = Principal::new(AuthMethod::Globus, "/O=X/CN=George");
        assert_eq!(
            m.admit(&kernel, &fred).unwrap_err(),
            MapError::NeedsAdministrator
        );
        m.administer(&kernel, &fred).unwrap();
        m.administer(&kernel, &george).unwrap();
        let s1 = m.admit(&kernel, &fred).unwrap();
        let s2 = m.admit(&kernel, &george).unwrap();
        assert_ne!(s1.cred.uid, s2.cred.uid);
        assert_ne!(s1.home, s2.home);
        assert_eq!(m.interventions(), 2);
    }

    #[test]
    fn readmission_is_stable() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = PrivateAccounts::new();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        m.administer(&kernel, &fred).unwrap();
        let a = m.admit(&kernel, &fred).unwrap();
        let b = m.admit(&kernel, &fred).unwrap();
        assert_eq!(a.account, b.account);
        // Re-administering the same user is free.
        m.administer(&kernel, &fred).unwrap();
        assert_eq!(m.interventions(), 1);
    }

    #[test]
    fn sharing_is_unsupported() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = PrivateAccounts::new();
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        m.administer(&kernel, &fred).unwrap();
        let s = m.admit(&kernel, &fred).unwrap();
        let george = Principal::new(AuthMethod::Globus, "/O=X/CN=George");
        assert_eq!(
            m.grant(&kernel, &s, &george, "/x").unwrap_err(),
            MapError::Unsupported
        );
    }
}
