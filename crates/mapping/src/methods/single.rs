//! The single-account method.

use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_interpose::SharedKernel;
use idbox_types::Principal;
use idbox_vfs::Cred;

/// Run every visiting process in the operator's own account.
///
/// Requires no privilege and is often a necessity; obviously it does not
/// protect the account holder, nor afford visitors any privacy from each
/// other — but everyone admitted can trivially share and return (paper,
/// Section 2: "Personal GASS").
pub struct SingleAccount {
    account: String,
}

impl SingleAccount {
    /// Map everyone onto `account` (the operator's own, which must
    /// exist).
    pub fn new(account: impl Into<String>) -> Self {
        SingleAccount {
            account: account.into(),
        }
    }
}

impl IdentityMapper for SingleAccount {
    fn name(&self) -> &'static str {
        "single"
    }

    fn requires_privilege(&self) -> bool {
        false
    }

    fn burden_label(&self) -> &'static str {
        "-"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        let k = kernel.lock();
        let accounts = k.accounts();
        let acct = accounts
            .lookup(&self.account)
            .ok_or(MapError::NeedsAdministrator)?;
        Ok(Session {
            principal: principal.clone(),
            account: acct.name.clone(),
            cred: Cred::new(acct.uid, acct.gid),
            home: acct.home.clone(),
            runner: Runner::Plain,
        })
    }

    fn grant(
        &mut self,
        _kernel: &SharedKernel,
        _session: &Session,
        _other: &Principal,
        _path: &str,
    ) -> Result<(), MapError> {
        // Everyone lands in the same account: sharing is implicit.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::{Account, Kernel};
    use idbox_types::AuthMethod;

    #[test]
    fn everyone_shares_the_account() {
        let mut kern = Kernel::new();
        kern.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
        let root = kern.vfs().root();
        kern.vfs_mut()
            .mkdir_all(root, "/home/dthain", 0o755, &Cred::ROOT)
            .unwrap();
        let kernel = idbox_interpose::share(kern);
        let mut m = SingleAccount::new("dthain");
        let fred = Principal::new(AuthMethod::Globus, "/O=X/CN=Fred");
        let george = Principal::new(AuthMethod::Globus, "/O=X/CN=George");
        let s1 = m.admit(&kernel, &fred).unwrap();
        let s2 = m.admit(&kernel, &george).unwrap();
        assert_eq!(s1.cred, s2.cred);
        assert_eq!(s1.home, s2.home);
        assert_eq!(m.interventions(), 0);
        assert!(!m.requires_privilege());
    }

    #[test]
    fn missing_account_needs_admin() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = SingleAccount::new("ghost");
        let p = Principal::new(AuthMethod::Unix, "x");
        assert_eq!(m.admit(&kernel, &p).unwrap_err(), MapError::NeedsAdministrator);
    }
}
