//! The untrusted-account (`nobody`) method.

use crate::session::{IdentityMapper, MapError, Runner, Session};
use idbox_interpose::SharedKernel;
use idbox_types::Principal;
use idbox_vfs::Cred;

/// Run all visiting processes as the low-privilege `nobody` account, the
/// way classic Web and FTP servers do. Protects the owner, but visitors
/// share one namespace with no privacy between them; privileges are
/// required to set the account up and switch into it.
pub struct UntrustedAccount {
    /// Where visitor files land (nobody has no home; `/tmp` by custom).
    workdir: String,
}

impl Default for UntrustedAccount {
    fn default() -> Self {
        UntrustedAccount::new()
    }
}

impl UntrustedAccount {
    /// The standard configuration.
    pub fn new() -> Self {
        UntrustedAccount {
            workdir: "/tmp".to_string(),
        }
    }
}

impl IdentityMapper for UntrustedAccount {
    fn name(&self) -> &'static str {
        "untrusted"
    }

    fn requires_privilege(&self) -> bool {
        true // setuid(nobody) takes root
    }

    fn burden_label(&self) -> &'static str {
        "-"
    }

    fn admit(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<Session, MapError> {
        let k = kernel.lock();
        let accounts = k.accounts();
        let acct = accounts
            .lookup("nobody")
            .ok_or(MapError::NeedsAdministrator)?;
        Ok(Session {
            principal: principal.clone(),
            account: acct.name.clone(),
            cred: Cred::new(acct.uid, acct.gid),
            home: self.workdir.clone(),
            runner: Runner::Plain,
        })
    }

    fn grant(
        &mut self,
        _kernel: &SharedKernel,
        _session: &Session,
        _other: &Principal,
        _path: &str,
    ) -> Result<(), MapError> {
        // Same account for everyone: sharing is implicit.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_kernel::Kernel;
    use idbox_types::AuthMethod;

    #[test]
    fn everyone_is_nobody() {
        let kernel = idbox_interpose::share(Kernel::new());
        let mut m = UntrustedAccount::new();
        let p = Principal::new(AuthMethod::Hostname, "h.x.edu");
        let s = m.admit(&kernel, &p).unwrap();
        assert_eq!(s.account, "nobody");
        assert_eq!(s.cred.uid, 65534);
        assert_eq!(s.home, "/tmp");
        assert!(m.requires_privilege());
    }
}
