//! Measuring the Figure 1 property matrix.
//!
//! Rather than asserting what each mapping method can do, this harness
//! *runs the scenario* and observes: a resource owner with a private
//! file; three grid users (two from one organization, one from another)
//! who are admitted, store data, attempt to read each other's data,
//! attempt grid-name-based sharing, log out, and return.

use crate::session::{IdentityMapper, MapError, Session};
use idbox_interpose::SharedKernel;
use idbox_kernel::{Account, Kernel};
use idbox_types::{AuthMethod, Principal};
use idbox_vfs::Cred;
use std::fmt;

/// A three-valued property (group accounts have "fixed" policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// The property holds for arbitrary users.
    Yes,
    /// The property does not hold.
    No,
    /// The property holds only along fixed, pre-configured lines.
    Fixed,
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // f.pad keeps table column widths working ({:<9} etc.).
        f.pad(match self {
            Tri::Yes => "yes",
            Tri::No => "no",
            Tri::Fixed => "fixed",
        })
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        if b {
            Tri::Yes
        } else {
            Tri::No
        }
    }
}

/// The measured row of Figure 1 for one method.
#[derive(Debug, Clone)]
pub struct MethodProperties {
    /// Method name.
    pub method: &'static str,
    /// Must the operator be root?
    pub requires_privilege: bool,
    /// Is the resource owner's private data protected from visitors?
    pub protects_owner: bool,
    /// Can a visitor keep data private from other visitors?
    pub allows_privacy: Tri,
    /// Can a visitor share data with another *grid identity* without an
    /// administrator?
    pub allows_sharing: Tri,
    /// Can a visitor log out and later return to stored data?
    pub allows_return: bool,
    /// Figure 1's burden label.
    pub burden_label: &'static str,
    /// Measured: manual root interventions to admit the 3 scenario users.
    pub interventions: u64,
}

impl MethodProperties {
    /// One formatted table row (used by the Figure 1 harness binary).
    pub fn table_row(&self) -> String {
        format!(
            "{:<14} {:<10} {:<9} {:<9} {:<9} {:<8} {:<10} {:<4}",
            self.method,
            if self.requires_privilege { "root" } else { "-" },
            if self.protects_owner { "yes" } else { "no" },
            self.allows_privacy,
            self.allows_sharing,
            if self.allows_return { "yes" } else { "no" },
            self.burden_label,
            self.interventions,
        )
    }

    /// The table header matching [`MethodProperties::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<14} {:<10} {:<9} {:<9} {:<9} {:<8} {:<10} {:<4}",
            "method", "privilege", "protect", "privacy", "sharing", "return", "burden", "ops"
        )
    }
}

/// Build the scenario kernel: operator `dthain` (uid 1000) with a
/// private file `/home/dthain/secret`.
pub fn scenario_kernel() -> SharedKernel {
    let mut k = Kernel::new();
    k.accounts_mut()
        .add(Account::new("dthain", 1000, 1000))
        .unwrap();
    let root = k.vfs().root();
    k.vfs_mut()
        .mkdir_all(root, "/home/dthain", 0o755, &Cred::ROOT)
        .unwrap();
    k.vfs_mut()
        .chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT)
        .unwrap();
    let dthain = Cred::new(1000, 1000);
    k.vfs_mut()
        .write_file(root, "/home/dthain/secret", b"owner private", &dthain)
        .unwrap();
    k.vfs_mut()
        .chmod(root, "/home/dthain/secret", 0o600, &dthain)
        .unwrap();
    k.sync_passwd_file();
    idbox_interpose::share(k)
}

/// The three scenario principals.
pub fn scenario_principals() -> (Principal, Principal, Principal) {
    (
        Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred"),
        Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=George"),
        Principal::new(AuthMethod::Globus, "/O=Elsewhere/CN=Eve"),
    )
}

/// Admit a principal, performing (and counting) administrator work when
/// the method demands it.
fn admit_with_admin(
    m: &mut dyn IdentityMapper,
    kernel: &SharedKernel,
    p: &Principal,
) -> Result<Session, MapError> {
    match m.admit(kernel, p) {
        Ok(s) => Ok(s),
        Err(MapError::NeedsAdministrator) => {
            m.administer(kernel, p)?;
            m.admit(kernel, p)
        }
        Err(e) => Err(e),
    }
}

/// Can this session read the file at `path`?
fn can_read(kernel: &SharedKernel, s: &Session, path: &str) -> bool {
    let path = path.to_string();
    s.run(kernel, "probe", move |ctx| {
        i32::from(ctx.read_file(&path).is_ok())
    })
    .map(|c| c == 1)
    .unwrap_or(false)
}

/// Run the full scenario against one mapping method.
pub fn probe_method(
    kernel: &SharedKernel,
    mapper: &mut dyn IdentityMapper,
) -> Result<MethodProperties, MapError> {
    let (fred, george, eve) = scenario_principals();

    // --- Admit Fred; he stores a file in his session home.
    let s_fred = admit_with_admin(mapper, kernel, &fred)?;
    let fred_file = format!("{}/mydata.txt", s_fred.home);
    {
        let path = fred_file.clone();
        let code = s_fred
            .run(kernel, "store", move |ctx| {
                match ctx.write_file(&path, b"fred's data") {
                    Ok(()) => 0,
                    Err(_) => 1,
                }
            })
            .map_err(MapError::Sys)?;
        if code != 0 {
            return Err(MapError::Sys(idbox_types::Errno::EACCES));
        }
    }

    // --- Protect owner: can Fred read the operator's private file?
    let protects_owner = !can_read(kernel, &s_fred, "/home/dthain/secret");

    // --- Privacy: George (same org) and Eve (other org) try to read.
    let s_george = admit_with_admin(mapper, kernel, &george)?;
    let s_eve = admit_with_admin(mapper, kernel, &eve)?;
    let george_reads = can_read(kernel, &s_george, &fred_file);
    let eve_reads = can_read(kernel, &s_eve, &fred_file);
    let allows_privacy = match (george_reads, eve_reads) {
        (false, false) => Tri::Yes,
        (true, false) => Tri::Fixed, // private across orgs only
        _ => Tri::No,
    };

    // --- Sharing: Fred grants, by grid name, to George and to Eve.
    let share_with_george = george_reads
        || (mapper.grant(kernel, &s_fred, &george, &fred_file).is_ok()
            && can_read(kernel, &s_george, &fred_file));
    let share_with_eve = eve_reads
        || (mapper.grant(kernel, &s_fred, &eve, &fred_file).is_ok()
            && can_read(kernel, &s_eve, &fred_file));
    let allows_sharing = match (share_with_eve, share_with_george) {
        (true, _) => Tri::Yes,
        (false, true) => Tri::Fixed, // only along pre-configured lines
        (false, false) => Tri::No,
    };

    // --- Return: Fred logs out and comes back.
    mapper.release(kernel, s_fred)?;
    let s_fred2 = admit_with_admin(mapper, kernel, &fred)?;
    let allows_return = can_read(kernel, &s_fred2, &fred_file);

    Ok(MethodProperties {
        method: mapper.name(),
        requires_privilege: mapper.requires_privilege(),
        protects_owner,
        allows_privacy,
        allows_sharing,
        allows_return,
        burden_label: mapper.burden_label(),
        interventions: mapper.interventions(),
    })
}

/// Probe every method and return the full Figure 1 matrix.
pub fn probe_all() -> Vec<MethodProperties> {
    use crate::methods::*;
    let mut rows = Vec::new();

    let kernel = scenario_kernel();
    let mut single = SingleAccount::new("dthain");
    rows.push(probe_method(&kernel, &mut single).expect("single"));

    let kernel = scenario_kernel();
    let mut untrusted = UntrustedAccount::new();
    rows.push(probe_method(&kernel, &mut untrusted).expect("untrusted"));

    let kernel = scenario_kernel();
    let mut private = PrivateAccounts::new();
    rows.push(probe_method(&kernel, &mut private).expect("private"));

    let kernel = scenario_kernel();
    let mut group = GroupAccounts::with_groups(
        &kernel,
        &[
            ("globus:/O=UnivNowhere/*", "grid_un"),
            ("globus:/O=Elsewhere/*", "grid_el"),
        ],
    )
    .expect("groups");
    rows.push(probe_method(&kernel, &mut group).expect("group"));

    let kernel = scenario_kernel();
    let mut anon = AnonymousAccounts::new();
    rows.push(probe_method(&kernel, &mut anon).expect("anonymous"));

    let kernel = scenario_kernel();
    let mut pool = AccountPool::with_size(&kernel, 8).expect("pool");
    rows.push(probe_method(&kernel, &mut pool).expect("pool"));

    let kernel = scenario_kernel();
    let mut boxed = IdentityBoxMapper::new(Cred::new(1000, 1000));
    rows.push(probe_method(&kernel, &mut boxed).expect("identity box"));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The measured matrix must reproduce Figure 1 of the paper.
    #[test]
    fn figure1_matrix_reproduced() {
        let rows = probe_all();
        let find = |name: &str| {
            rows.iter()
                .find(|r| r.method == name)
                .unwrap_or_else(|| panic!("missing row {name}"))
        };

        let single = find("single");
        assert!(!single.requires_privilege);
        assert!(!single.protects_owner);
        assert_eq!(single.allows_privacy, Tri::No);
        assert_eq!(single.allows_sharing, Tri::Yes);
        assert!(single.allows_return);

        let untrusted = find("untrusted");
        assert!(untrusted.requires_privilege);
        assert!(untrusted.protects_owner);
        assert_eq!(untrusted.allows_privacy, Tri::No);
        assert_eq!(untrusted.allows_sharing, Tri::Yes);
        assert!(untrusted.allows_return);

        let private = find("private");
        assert!(private.requires_privilege);
        assert!(private.protects_owner);
        assert_eq!(private.allows_privacy, Tri::Yes);
        assert_eq!(private.allows_sharing, Tri::No);
        assert!(private.allows_return);
        assert_eq!(private.interventions, 3, "one admin action per user");

        let group = find("group");
        assert!(group.requires_privilege);
        assert!(group.protects_owner);
        assert_eq!(group.allows_privacy, Tri::Fixed);
        assert_eq!(group.allows_sharing, Tri::Fixed);
        assert!(group.allows_return);
        assert_eq!(group.interventions, 2, "one admin action per group");

        let anon = find("anonymous");
        assert!(anon.requires_privilege);
        assert!(anon.protects_owner);
        assert_eq!(anon.allows_privacy, Tri::Yes);
        assert_eq!(anon.allows_sharing, Tri::No);
        assert!(!anon.allows_return);

        let pool = find("pool");
        assert!(pool.requires_privilege);
        assert!(pool.protects_owner);
        assert_eq!(pool.allows_privacy, Tri::Yes);
        assert_eq!(pool.allows_sharing, Tri::No);
        assert!(!pool.allows_return);

        let idbox = find("identity box");
        assert!(!idbox.requires_privilege);
        assert!(idbox.protects_owner);
        assert_eq!(idbox.allows_privacy, Tri::Yes);
        assert_eq!(idbox.allows_sharing, Tri::Yes);
        assert!(idbox.allows_return);
        assert_eq!(idbox.interventions, 0);
    }

    #[test]
    fn table_rows_format() {
        let rows = probe_all();
        let header = MethodProperties::table_header();
        for r in &rows {
            assert!(r.table_row().split_whitespace().count() >= 7);
        }
        assert!(header.contains("privacy"));
    }
}
