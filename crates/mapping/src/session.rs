//! The mapping trait and admitted sessions.

use idbox_core::IdentityBox;
use idbox_interpose::{GuestCtx, SharedKernel, Supervisor};
use idbox_types::{Errno, Principal, SysResult};
use idbox_vfs::Cred;
use std::fmt;
use std::sync::Arc;

/// Failure to map a principal into the local system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// A human administrator must act (create an account, edit the
    /// gridmap) before this principal can be admitted.
    NeedsAdministrator,
    /// The method has run out of local accounts (pools).
    NoAccountsAvailable,
    /// The method has no way to express this operation (e.g. grid-name
    /// based sharing under private accounts).
    Unsupported,
    /// An underlying system error.
    Sys(Errno),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NeedsAdministrator => write!(f, "administrator intervention required"),
            MapError::NoAccountsAvailable => write!(f, "no local accounts available"),
            MapError::Unsupported => write!(f, "operation not expressible under this method"),
            MapError::Sys(e) => write!(f, "system error: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<Errno> for MapError {
    fn from(e: Errno) -> Self {
        MapError::Sys(e)
    }
}

/// How an admitted session executes guest programs.
#[derive(Clone)]
pub enum Runner {
    /// Directly under a local credential (every account-based method).
    Plain,
    /// Inside an identity box.
    Boxed(Arc<IdentityBox>),
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Runner::Plain => write!(f, "Plain"),
            Runner::Boxed(b) => write!(f, "Boxed({})", b.identity()),
        }
    }
}

/// An admitted visitor: the local execution context their jobs get.
#[derive(Debug)]
pub struct Session {
    /// The proven global identity.
    pub principal: Principal,
    /// The local account name the session runs under (informational).
    pub account: String,
    /// The Unix credential of the session's processes.
    pub cred: Cred,
    /// Where the visitor's files go.
    pub home: String,
    /// Execution mode.
    pub runner: Runner,
}

impl Session {
    /// Run a guest program in this session. Account-based sessions run
    /// natively (direct supervisor); boxed sessions run interposed under
    /// the identity-box policy.
    pub fn run(
        &self,
        kernel: &SharedKernel,
        comm: &str,
        prog: impl FnOnce(&mut GuestCtx<'_>) -> i32,
    ) -> SysResult<i32> {
        match &self.runner {
            Runner::Plain => {
                let pid = kernel.lock().spawn(self.cred, &self.home, comm)?;
                let mut sup = Supervisor::direct(Arc::clone(kernel));
                let mut ctx = GuestCtx::new(&mut sup, pid);
                let code = prog(&mut ctx);
                ctx.exit(code);
                Ok(code)
            }
            Runner::Boxed(b) => {
                let (code, _) = b.run(comm, prog)?;
                Ok(code)
            }
        }
    }
}

/// A method of admitting globally-identified users to a local system.
pub trait IdentityMapper: Send {
    /// Method name as in Figure 1.
    fn name(&self) -> &'static str;

    /// Must the service operator be root to employ this method?
    fn requires_privilege(&self) -> bool;

    /// Figure 1's administrative-burden label.
    fn burden_label(&self) -> &'static str;

    /// Map a principal into a local session.
    fn admit(&mut self, kernel: &SharedKernel, principal: &Principal)
        -> Result<Session, MapError>;

    /// End a session (pools recycle the account, anonymous methods
    /// destroy it).
    fn release(&mut self, kernel: &SharedKernel, session: Session) -> Result<(), MapError> {
        let _ = (kernel, session);
        Ok(())
    }

    /// A manual root intervention admitting this principal (creating the
    /// account, editing the gridmap). Methods that need none succeed
    /// trivially.
    fn administer(
        &mut self,
        kernel: &SharedKernel,
        principal: &Principal,
    ) -> Result<(), MapError> {
        let _ = (kernel, principal);
        Ok(())
    }

    /// The visitor `session` tries to share `path` with another *grid*
    /// identity, without administrator help. This is the crux of
    /// Figure 1's sharing column: the visitor knows only the other
    /// user's global name.
    fn grant(
        &mut self,
        kernel: &SharedKernel,
        session: &Session,
        other: &Principal,
        path: &str,
    ) -> Result<(), MapError> {
        let _ = (kernel, session, other, path);
        Err(MapError::Unsupported)
    }

    /// Manual root interventions performed so far.
    fn interventions(&self) -> u64 {
        0
    }
}
