//! Prometheus exposition for the write-ahead-log durability layer.
//!
//! The WAL lives in the vfs crate, which sits *below* this one in the
//! dependency order, so the counters cross the boundary as a plain
//! snapshot struct: the server converts the vfs `WalStats` into a
//! [`WalCounters`] and hands it to [`render_wal_prometheus`]. Replay
//! counters (`replayed`, `torn_tails`, `corrupt_frames`) are stamped
//! once at boot and never move afterwards — a nonzero torn-tail count
//! on a freshly restarted server is the expected signature of a crash
//! mid-append, while a nonzero corrupt-frame count means bytes rotted
//! *inside* the retained log and deserves a closer look.

use std::fmt::Write as _;

/// A point-in-time snapshot of the WAL's counters, in exposition
/// order. All fields are cumulative since boot except the two gauges
/// (`log_bytes`, `since_snapshot`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records appended.
    pub appends: u64,
    /// Payload + framing bytes appended.
    pub bytes: u64,
    /// `fsync` calls issued (inline and by the group-commit flusher).
    pub fsyncs: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Write/sync errors (the WAL fail-stops on the first one).
    pub errors: u64,
    /// Live log bytes on disk (segments past the snapshot watermark).
    pub log_bytes: u64,
    /// Records appended since the last snapshot.
    pub since_snapshot: u64,
    /// Records replayed at the last boot.
    pub replayed: u64,
    /// Torn final records discarded at the last boot (crash signature).
    pub torn_tails: u64,
    /// Corrupt frames found mid-log at the last boot (bit rot).
    pub corrupt_frames: u64,
}

/// Render the `idbox_wal_*` families in Prometheus text exposition
/// format (version 0.0.4). These are server-global — there is one log
/// per server — so no labels are emitted.
pub fn render_wal_prometheus(c: &WalCounters) -> String {
    let mut out = String::new();
    let families: [(&str, &str, &str, u64); 10] = [
        (
            "idbox_wal_appends_total",
            "WAL records appended.",
            "counter",
            c.appends,
        ),
        (
            "idbox_wal_bytes_total",
            "WAL bytes appended (payload + framing).",
            "counter",
            c.bytes,
        ),
        (
            "idbox_wal_fsyncs_total",
            "WAL fsync calls (inline and group-commit flusher).",
            "counter",
            c.fsyncs,
        ),
        (
            "idbox_wal_snapshots_total",
            "Durability snapshots installed.",
            "counter",
            c.snapshots,
        ),
        (
            "idbox_wal_errors_total",
            "WAL write/sync errors (the log fail-stops on the first).",
            "counter",
            c.errors,
        ),
        (
            "idbox_wal_log_bytes",
            "Live WAL bytes on disk past the snapshot watermark.",
            "gauge",
            c.log_bytes,
        ),
        (
            "idbox_wal_records_since_snapshot",
            "Records appended since the last snapshot.",
            "gauge",
            c.since_snapshot,
        ),
        (
            "idbox_wal_replayed_records_total",
            "Records replayed at the last boot.",
            "counter",
            c.replayed,
        ),
        (
            "idbox_wal_torn_tail_total",
            "Torn final records discarded at the last boot.",
            "counter",
            c.torn_tails,
        ),
        (
            "idbox_wal_corrupt_frames_total",
            "Corrupt mid-log frames found at the last boot.",
            "counter",
            c.corrupt_frames,
        ),
    ];
    for (name, help, kind, value) in families {
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_exposition_shape() {
        let c = WalCounters {
            appends: 12,
            bytes: 640,
            fsyncs: 3,
            snapshots: 1,
            errors: 0,
            log_bytes: 256,
            since_snapshot: 4,
            replayed: 8,
            torn_tails: 1,
            corrupt_frames: 0,
        };
        let text = render_wal_prometheus(&c);
        assert!(text.contains("idbox_wal_appends_total 12\n"));
        assert!(text.contains("idbox_wal_bytes_total 640\n"));
        assert!(text.contains("idbox_wal_fsyncs_total 3\n"));
        assert!(text.contains("idbox_wal_snapshots_total 1\n"));
        assert!(text.contains("idbox_wal_errors_total 0\n"));
        assert!(text.contains("# TYPE idbox_wal_log_bytes gauge\n"));
        assert!(text.contains("idbox_wal_log_bytes 256\n"));
        assert!(text.contains("idbox_wal_records_since_snapshot 4\n"));
        assert!(text.contains("idbox_wal_replayed_records_total 8\n"));
        assert!(text.contains("idbox_wal_torn_tail_total 1\n"));
        assert!(text.contains("idbox_wal_corrupt_frames_total 0\n"));
        // Every sample line is `name value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(name.starts_with("idbox_wal_"), "bad family in {line:?}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
