//! The flight recorder: a bounded per-thread ring of structured
//! runtime events, drained on demand into Chrome trace-viewer JSON.
//!
//! Every thread that records gets its own ring (a `VecDeque` behind a
//! mutex that is only ever `try_lock`ed on the record path, so a
//! concurrent drain can never block a worker — the event is dropped
//! and counted instead). Rings are bounded by a byte budget
//! (`IDBOX_TRACE_RING_KB` per thread, default 256, 0 disables): when
//! a push would exceed the budget the oldest events fall off. The
//! recorder therefore never grows without bound and never stalls the
//! hot path; its failure mode under pressure is forgetting the oldest
//! history, which is exactly what a flight recorder should do.
//!
//! Events carry the request [`TraceId`] when one is known, so a single
//! pipelined request can be followed across the client, the event
//! loop, the supervisor funnel (dispatch/policy), and the Vfs shard
//! locks in one Perfetto timeline. The current trace is parked in a
//! thread-local by the event loop for the duration of one frame
//! ([`set_current_trace`]), which is what lets layers with no obs
//! handle of their own (the lock shim's contention hook) tag their
//! events.

use crate::{now_unix_ns, TraceId};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

/// One recorded event: a span (`dur_ns > 0`) or an instant.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; 0 renders as an instant marker.
    pub dur_ns: u64,
    /// The request trace this event belongs to, when known.
    pub trace: Option<TraceId>,
    /// Recorder-assigned id of the recording thread.
    pub tid: u32,
    /// Plane the event belongs to: `client`, `rpc`, `dispatch`,
    /// `policy`, `exec`, `shard`, `loop`, `shed`, `retry`, `fault`.
    pub plane: &'static str,
    /// Event name within the plane (verb, syscall, `domain/shard`...).
    pub name: String,
}

impl FlightEvent {
    fn cost(&self) -> usize {
        std::mem::size_of::<FlightEvent>() + self.name.len()
    }
}

#[derive(Default)]
struct RingBuf {
    events: VecDeque<FlightEvent>,
    bytes: usize,
}

struct ThreadRing {
    tid: u32,
    buf: Mutex<RingBuf>,
}

static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Per-thread ring byte budget: `IDBOX_TRACE_RING_KB` (default 256,
/// 0 disables recording entirely). Read once per process.
pub fn ring_budget_bytes() -> usize {
    static B: OnceLock<usize> = OnceLock::new();
    *B.get_or_init(|| {
        std::env::var("IDBOX_TRACE_RING_KB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(256)
            .saturating_mul(1024)
    })
}

/// Runtime kill switch (the bench overhead gate flips this).
pub fn set_flight_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

fn recording() -> bool {
    ENABLED.load(Relaxed) && ring_budget_bytes() > 0
}

/// Events discarded because a drain held the ring lock.
pub fn dropped() -> u64 {
    DROPPED.load(Relaxed)
}

fn new_ring() -> Arc<ThreadRing> {
    let ring = Arc::new(ThreadRing {
        tid: NEXT_TID.fetch_add(1, Relaxed),
        buf: Mutex::new(RingBuf::default()),
    });
    let mut reg = RINGS.lock();
    // Bound the registry across thread churn: once it grows past a
    // generous cap, drop rings whose owning thread has exited (ours
    // is the only other strong reference).
    if reg.len() >= 512 {
        reg.retain(|r| Arc::strong_count(r) > 1);
    }
    reg.push(Arc::clone(&ring));
    ring
}

thread_local! {
    static RING: Arc<ThreadRing> = new_ring();
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Park (or clear) the trace id of the request this thread is
/// currently serving; recorded events without an explicit trace and
/// the shard-lock hook pick it up.
pub fn set_current_trace(trace: Option<TraceId>) {
    CURRENT.with(|c| c.set(trace.map_or(0, |t| t.raw())));
}

/// The trace id parked by [`set_current_trace`], if any.
pub fn current_trace() -> Option<TraceId> {
    CURRENT.with(|c| TraceId::from_raw(c.get()))
}

fn push(ev: FlightEvent) {
    let budget = ring_budget_bytes();
    RING.with(|r| match r.buf.try_lock() {
        Some(mut g) => {
            g.bytes += ev.cost();
            g.events.push_back(ev);
            while g.bytes > budget {
                match g.events.pop_front() {
                    Some(old) => g.bytes -= old.cost(),
                    None => break,
                }
            }
        }
        None => {
            DROPPED.fetch_add(1, Relaxed);
        }
    });
}

/// Record a completed span on this thread.
pub fn record_span(plane: &'static str, name: &str, trace: Option<TraceId>, ts_ns: u64, dur_ns: u64) {
    if !recording() {
        return;
    }
    push(FlightEvent {
        ts_ns,
        dur_ns,
        trace: trace.or_else(current_trace),
        tid: RING.with(|r| r.tid),
        plane,
        name: name.to_string(),
    });
}

/// Record an instant (zero-duration) event stamped "now".
pub fn record_instant(plane: &'static str, name: &str, trace: Option<TraceId>) {
    record_span(plane, name, trace, now_unix_ns(), 0);
}

/// Install the shard-lock contention hook: every profiled lock
/// acquisition made while a trace is parked on the acquiring thread
/// becomes a `shard` plane event (`name = "domain/shard"`, duration =
/// the contended wait, zero when uncontended). Idempotent.
pub fn install_lock_hook() {
    parking_lot::set_contention_hook(Box::new(|domain, shard, wait_us| {
        if !recording() {
            return;
        }
        if current_trace().is_none() {
            return;
        }
        let wait_ns = wait_us.saturating_mul(1000);
        record_span(
            "shard",
            &format!("{domain}/{shard}"),
            None,
            now_unix_ns().saturating_sub(wait_ns),
            wait_ns,
        );
    }));
}

/// Clone out every event recorded at or after `since_ns`, across all
/// threads, in timestamp order.
pub fn snapshot_since(since_ns: u64) -> Vec<FlightEvent> {
    let rings: Vec<Arc<ThreadRing>> = RINGS.lock().clone();
    let mut out = Vec::new();
    for r in rings {
        let g = r.buf.lock();
        out.extend(g.events.iter().filter(|e| e.ts_ns >= since_ns).cloned());
    }
    out.sort_by_key(|e| (e.ts_ns, e.dur_ns));
    out
}

/// Per-ring `(tid, events, bytes)` occupancy, for bound assertions
/// and the health line.
pub fn ring_usage() -> Vec<(u32, usize, usize)> {
    RINGS
        .lock()
        .iter()
        .map(|r| {
            let g = r.buf.lock();
            (r.tid, g.events.len(), g.bytes)
        })
        .collect()
}

fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_us(out: &mut String, ns: u64) {
    // Chrome trace timestamps are microseconds; keep nanosecond
    // precision as a fractional part.
    out.push_str(&format!("{}.{:03}", ns / 1000, ns % 1000));
}

/// Render events as Chrome trace-viewer JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper), loadable by Perfetto and
/// `chrome://tracing`. Spans render as complete (`X`) events, instants
/// as thread-scoped `i` events; the trace id rides in `args.trace`.
pub fn render_chrome_trace(events: &[FlightEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let pid = std::process::id();
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape_into(&mut out, &e.name);
        out.push_str("\",\"cat\":\"");
        json_escape_into(&mut out, e.plane);
        out.push_str("\",\"ph\":\"");
        out.push_str(if e.dur_ns > 0 { "X" } else { "i" });
        out.push_str("\",\"ts\":");
        push_us(&mut out, e.ts_ns);
        if e.dur_ns > 0 {
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(",\"pid\":{pid},\"tid\":{}", e.tid));
        if let Some(t) = e.trace {
            out.push_str(",\"args\":{\"trace\":\"");
            out.push_str(&t.to_string());
            out.push_str("\"}");
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and this thread's ring are shared across test
    // threads / assertions; serialize the tests that record.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_are_recorded_and_snapshotted() {
        let _g = TEST_LOCK.lock();
        let t = crate::next_trace_id();
        let t0 = now_unix_ns();
        record_span("rpc", "stat", Some(t), t0, 1500);
        record_instant("shed", "busy", None);
        let events = snapshot_since(t0.saturating_sub(1));
        assert!(events.iter().any(|e| e.plane == "rpc"
            && e.name == "stat"
            && e.trace == Some(t)
            && e.dur_ns == 1500));
        assert!(events
            .iter()
            .any(|e| e.plane == "shed" && e.dur_ns == 0));
    }

    #[test]
    fn current_trace_tags_untraced_events() {
        let _g = TEST_LOCK.lock();
        let t = crate::next_trace_id();
        set_current_trace(Some(t));
        let t0 = now_unix_ns();
        record_span("dispatch", "open", None, t0, 10);
        set_current_trace(None);
        record_span("dispatch", "close", None, now_unix_ns(), 10);
        let events = snapshot_since(t0.saturating_sub(1));
        let open = events
            .iter()
            .find(|e| e.plane == "dispatch" && e.name == "open")
            .unwrap();
        assert_eq!(open.trace, Some(t));
        let close = events
            .iter()
            .find(|e| e.plane == "dispatch" && e.name == "close")
            .unwrap();
        assert_eq!(close.trace, None);
    }

    #[test]
    fn ring_bytes_stay_under_budget() {
        let _g = TEST_LOCK.lock();
        let budget = ring_budget_bytes();
        assert!(budget > 0);
        let t0 = now_unix_ns();
        for i in 0..20_000 {
            record_span("rpc", &format!("flood-{i}"), None, t0 + i, 1);
        }
        for (_, _, bytes) in ring_usage() {
            assert!(bytes <= budget, "ring over budget: {bytes} > {budget}");
        }
        // The ring kept the newest events, not the oldest.
        let events = snapshot_since(t0);
        assert!(events.iter().any(|e| e.name == "flood-19999"));
        assert!(!events.iter().any(|e| e.name == "flood-0"));
    }

    #[test]
    fn chrome_trace_renders_spans_instants_and_escapes() {
        let t = TraceId::from_raw(0xabcd).unwrap();
        let events = vec![
            FlightEvent {
                ts_ns: 1_500,
                dur_ns: 2_000,
                trace: Some(t),
                tid: 7,
                plane: "rpc",
                name: "sta\"t\\x".into(),
            },
            FlightEvent {
                ts_ns: 4_000,
                dur_ns: 0,
                trace: None,
                tid: 7,
                plane: "shed",
                name: "busy\nline".into(),
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("sta\\\"t\\\\x"));
        assert!(json.contains("busy\\nline"));
        assert!(json.contains("\"trace\":\"000000000000abcd\""));
        // No raw control characters survive into the JSON text.
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = TEST_LOCK.lock();
        set_flight_enabled(false);
        let t0 = now_unix_ns();
        record_span("rpc", "ghost", None, t0, 99);
        set_flight_enabled(true);
        assert!(!snapshot_since(t0.saturating_sub(1))
            .iter()
            .any(|e| e.name == "ghost"));
    }
}
