//! Tracing and per-identity accounting for the boxed Chirp stack.
//!
//! The paper's thesis is that one *global identity string* follows a
//! visitor through every process and resource. This crate makes that
//! identity the first-class dimension of the telemetry as well:
//!
//! - [`TraceId`] — a 64-bit id generated at the Chirp client and
//!   carried as an optional final `trace=<16 hex>` token on every RPC
//!   line, so one request can be joined across the RPC span, the
//!   policy rulings it triggered (the audit ring), and the boxed child
//!   it exec'd (via its box environment).
//! - [`Span`] — one timed phase of a request (`rpc`, `policy`,
//!   `dispatch`, `exec`), recorded into a bounded [`SlowOpLog`] when
//!   its duration crosses a configurable threshold.
//! - [`IdentityMetrics`] — a registry of per-principal counters
//!   (syscalls by name, bytes read/written, denials, reserve
//!   amplifications, active sessions). All counters are atomics bumped
//!   through `&self`, so the hot dispatch path never takes a lock; the
//!   registry map itself is locked only on first sight of an identity
//!   and when rendering. Cardinality is bounded: when the registry is
//!   full, the oldest-idle identity is evicted.
//!
//! This crate depends only on the lock shim — deliberately below
//! `kernel`/`core`/`chirp` in the dependency order, so all of them can
//! feed it. The per-syscall counter table is sized by a caller-passed
//! name slice (the kernel's `Syscall::NAMES`), which keeps the kernel
//! dependency out.

mod durability;
pub mod flight;
mod runtime;

pub use durability::{render_wal_prometheus, WalCounters};
pub use runtime::{
    lag_percentile_from, render_lock_prometheus, Log2HistoUs, LoopStats, WorkerStats,
    LOOP_LAG_BUCKETS,
};

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A 64-bit request trace id. Zero is reserved for "no trace", so a
/// valid id is always nonzero; the wire spelling is exactly 16
/// lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Construct from a raw value; zero means "no trace" and is
    /// refused.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw nonzero value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Parse the exact wire spelling: 16 lowercase hex digits, nonzero.
impl FromStr for TraceId {
    type Err = ();

    fn from_str(s: &str) -> Result<TraceId, ()> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
            return Err(());
        }
        let raw = u64::from_str_radix(s, 16).map_err(|_| ())?;
        TraceId::from_raw(raw).ok_or(())
    }
}

/// Process-wide counter folded into the generator so two ids minted in
/// the same nanosecond still differ.
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mint a fresh trace id. No external randomness: wall clock, process
/// id, and a process-wide counter are mixed through splitmix64, which
/// is plenty for correlation ids (uniqueness, not secrecy).
pub fn next_trace_id() -> TraceId {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(GOLDEN);
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id());
    let mut raw = splitmix64(nanos ^ n.wrapping_mul(GOLDEN) ^ (pid << 32));
    if raw == 0 {
        raw = 1;
    }
    TraceId(raw)
}

/// Wall-clock nanoseconds since the Unix epoch, for span start stamps.
pub fn now_unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// A shared slot holding "the trace id of the request currently being
/// served". The Chirp session loop stores each request's id here; the
/// policy and supervisor read it when they stamp audit events and
/// spans. Zero encodes "none".
#[derive(Debug, Default)]
pub struct TraceCell(AtomicU64);

impl TraceCell {
    /// An empty cell (no current trace).
    pub const fn new() -> TraceCell {
        TraceCell(AtomicU64::new(0))
    }

    /// Set (or clear, with `None`) the current trace id.
    pub fn set(&self, trace: Option<TraceId>) {
        self.0.store(trace.map_or(0, |t| t.0), Ordering::Relaxed);
    }

    /// The current trace id, if any.
    pub fn get(&self) -> Option<TraceId> {
        TraceId::from_raw(self.0.load(Ordering::Relaxed))
    }
}

/// Which phase of a request a span timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One whole RPC, read-line to reply, at the server.
    Rpc,
    /// One policy ruling (ACL check) inside the supervisor.
    Policy,
    /// One syscall dispatch through the supervisor funnel.
    Dispatch,
    /// One staged program run by the `exec` RPC.
    Exec,
}

impl Phase {
    /// Stable report spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Rpc => "rpc",
            Phase::Policy => "policy",
            Phase::Dispatch => "dispatch",
            Phase::Exec => "exec",
        }
    }
}

/// One timed phase of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The request's trace id, when the client sent one.
    pub trace: Option<TraceId>,
    /// Which phase was timed.
    pub phase: Phase,
    /// What ran: the RPC verb, syscall name, or program path.
    pub name: String,
    /// The principal the work was done for.
    pub identity: String,
    /// Wall-clock start, nanoseconds since the Unix epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Default slow-op ring capacity.
pub const SLOW_OP_DEFAULT_CAP: usize = 512;

/// A bounded, oldest-out ring of [`Span`]s whose duration crossed a
/// threshold. Like the audit ring, recording goes through `&self`.
#[derive(Debug)]
pub struct SlowOpLog {
    cap: usize,
    threshold_ns: AtomicU64,
    total: AtomicU64,
    spans: Mutex<VecDeque<Span>>,
}

impl SlowOpLog {
    /// A ring holding at most `cap` spans (`cap` ≥ 1), recording spans
    /// of at least `threshold_ns` nanoseconds.
    pub fn new(cap: usize, threshold_ns: u64) -> SlowOpLog {
        SlowOpLog {
            cap: cap.max(1),
            threshold_ns: AtomicU64::new(threshold_ns),
            total: AtomicU64::new(0),
            spans: Mutex::new(VecDeque::with_capacity(cap.clamp(1, SLOW_OP_DEFAULT_CAP))),
        }
    }

    /// The current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Record `span` if it is slow enough; returns whether it was kept.
    pub fn record(&self, span: Span) -> bool {
        if span.dur_ns < self.threshold_ns() {
            return false;
        }
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.spans.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(span);
        true
    }

    /// Oldest-first copy of the retained spans.
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total slow spans ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Per-principal atomic counters. One instance per identity, shared
/// between every session and box serving that identity; every bump is
/// a relaxed atomic add, so the dispatch hot path never locks.
#[derive(Debug)]
pub struct IdentityCounters {
    /// Dispatched syscalls, indexed by syscall slot (the table is
    /// sized by the name slice the registry was built with).
    syscalls: Box<[AtomicU64]>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    /// Wire bytes received from this identity's connections (frames +
    /// payloads), counted at the event loop's socket reads.
    bytes_in: AtomicU64,
    /// Wire bytes flushed to this identity's connections, counted at
    /// the event loop's (vectored) socket writes.
    bytes_out: AtomicU64,
    denials: AtomicU64,
    reserve_amplifications: AtomicU64,
    verdict_cache_hits: AtomicU64,
    verdict_cache_misses: AtomicU64,
    active_sessions: AtomicU64,
    rpcs_shed: AtomicU64,
    rpcs_retried: AtomicU64,
    inflight: AtomicU64,
    /// Logical tick of the last registry touch — the eviction key.
    last_active: AtomicU64,
}

impl IdentityCounters {
    fn new(slots: usize) -> IdentityCounters {
        IdentityCounters {
            syscalls: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            reserve_amplifications: AtomicU64::new(0),
            verdict_cache_hits: AtomicU64::new(0),
            verdict_cache_misses: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            rpcs_shed: AtomicU64::new(0),
            rpcs_retried: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            last_active: AtomicU64::new(0),
        }
    }

    /// Count one dispatched syscall by slot. Out-of-range slots (a
    /// newer kernel than the registry's name table) are ignored.
    pub fn bump_syscall(&self, slot: usize) {
        if let Some(c) = self.syscalls.get(slot) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count payload bytes returned by read-family calls.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Count payload bytes accepted by write-family calls.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Count wire bytes received on this identity's connections.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count wire bytes sent on this identity's connections.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one policy denial.
    pub fn bump_denial(&self) {
        self.denials.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one reserve-right amplification (Section 4's mkdir).
    pub fn bump_reserve_amplification(&self) {
        self.reserve_amplifications.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one ACL verdict served from the generation-keyed cache.
    pub fn bump_verdict_hit(&self) {
        self.verdict_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one ACL verdict that had to re-read the directory's ACL.
    pub fn bump_verdict_miss(&self) {
        self.verdict_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one RPC refused by a load-shedding gate (drain mode or an
    /// inflight watermark) with a fast `EAGAIN` busy reply.
    pub fn bump_rpc_shed(&self) {
        self.rpcs_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one RPC the client marked as a retry of an earlier attempt
    /// (the `retry=<n>` request token).
    pub fn bump_rpc_retried(&self) {
        self.rpcs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// An RPC for this identity entered dispatch.
    pub fn rpc_started(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// An RPC for this identity left dispatch.
    pub fn rpc_finished(&self) {
        // Saturating: a stray extra call must not wrap to u64::MAX.
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// A session for this identity opened.
    pub fn session_started(&self) {
        self.active_sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// A session for this identity closed.
    pub fn session_ended(&self) {
        // Saturating: a stray extra call must not wrap to u64::MAX.
        let _ = self
            .active_sessions
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Dispatches recorded for one syscall slot.
    pub fn syscall_count(&self, slot: usize) -> u64 {
        self.syscalls.get(slot).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Dispatches recorded across all syscalls.
    pub fn total_syscalls(&self) -> u64 {
        self.syscalls.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Payload bytes returned by read-family calls.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Payload bytes accepted by write-family calls.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Wire bytes received on this identity's connections.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Wire bytes sent on this identity's connections.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Policy denials recorded.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Reserve amplifications recorded.
    pub fn reserve_amplifications(&self) -> u64 {
        self.reserve_amplifications.load(Ordering::Relaxed)
    }

    /// ACL verdicts served from the generation-keyed cache.
    pub fn verdict_cache_hits(&self) -> u64 {
        self.verdict_cache_hits.load(Ordering::Relaxed)
    }

    /// ACL verdicts that re-read the directory's ACL.
    pub fn verdict_cache_misses(&self) -> u64 {
        self.verdict_cache_misses.load(Ordering::Relaxed)
    }

    /// Sessions currently open for this identity.
    pub fn active_sessions(&self) -> u64 {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// RPCs refused by a load-shedding gate.
    pub fn rpcs_shed(&self) -> u64 {
        self.rpcs_shed.load(Ordering::Relaxed)
    }

    /// RPCs that arrived marked as retries.
    pub fn rpcs_retried(&self) -> u64 {
        self.rpcs_retried.load(Ordering::Relaxed)
    }

    /// RPCs currently in dispatch for this identity.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// Default bound on how many identities the registry tracks at once.
pub const IDENTITY_METRICS_DEFAULT_CAP: usize = 1024;

/// A bounded registry of [`IdentityCounters`], keyed by principal.
///
/// `handle()` hands out `Arc`s, so sessions bump their counters without
/// touching the map again. When a new identity would exceed the bound,
/// the oldest-idle entry (smallest last-touch tick among identities
/// with no active session; any oldest entry if all are active) is
/// evicted — its history is lost, which is the documented trade for
/// bounded memory under "millions of users".
#[derive(Debug)]
pub struct IdentityMetrics {
    /// Syscall names, by slot — sizes the per-identity tables and
    /// labels the exposition. Passed in (the kernel's `Syscall::NAMES`)
    /// so this crate needn't depend on the kernel.
    names: &'static [&'static str],
    cap: usize,
    tick: AtomicU64,
    map: Mutex<HashMap<String, Arc<IdentityCounters>>>,
    /// Connections refused at the accept loop, before any identity is
    /// known — a registry-level (label-less) counter, since there is no
    /// principal to charge it to.
    admission_shed: AtomicU64,
}

impl IdentityMetrics {
    /// A registry labeling syscalls with `names`, tracking at most
    /// `cap` identities (`cap` ≥ 1).
    pub fn new(names: &'static [&'static str], cap: usize) -> IdentityMetrics {
        IdentityMetrics {
            names,
            cap: cap.max(1),
            tick: AtomicU64::new(0),
            map: Mutex::new(HashMap::new()),
            admission_shed: AtomicU64::new(0),
        }
    }

    /// Count one connection refused at the accept loop (over the
    /// `max_connections` cap), before authentication names an identity.
    pub fn bump_admission_shed(&self) {
        self.admission_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections refused at the accept loop so far.
    pub fn admission_shed(&self) -> u64 {
        self.admission_shed.load(Ordering::Relaxed)
    }

    /// The syscall name table this registry labels with.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// The cardinality bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Identities currently tracked.
    pub fn identities(&self) -> usize {
        self.map.lock().len()
    }

    /// The counters for `identity`, creating (and, at the bound,
    /// evicting the oldest-idle entry) as needed. Also refreshes the
    /// identity's last-touch tick.
    pub fn handle(&self, identity: &str) -> Arc<IdentityCounters> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        if let Some(c) = map.get(identity) {
            c.last_active.store(tick, Ordering::Relaxed);
            return Arc::clone(c);
        }
        if map.len() >= self.cap {
            Self::evict_oldest_idle(&mut map);
        }
        let c = Arc::new(IdentityCounters::new(self.names.len()));
        c.last_active.store(tick, Ordering::Relaxed);
        map.insert(identity.to_string(), Arc::clone(&c));
        c
    }

    /// Evict the entry with the smallest last-touch tick, preferring
    /// identities with no active session.
    fn evict_oldest_idle(map: &mut HashMap<String, Arc<IdentityCounters>>) {
        let victim = map
            .iter()
            .min_by_key(|(_, c)| {
                let idle = c.active_sessions() == 0;
                // Idle entries sort before active ones, oldest first.
                (!idle, c.last_active.load(Ordering::Relaxed))
            })
            .map(|(k, _)| k.clone());
        if let Some(k) = victim {
            map.remove(&k);
        }
    }

    /// Identity-sorted copy of the registry.
    pub fn snapshot(&self) -> Vec<(String, Arc<IdentityCounters>)> {
        let mut v: Vec<_> = self
            .map
            .lock()
            .iter()
            .map(|(k, c)| (k.clone(), Arc::clone(c)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Render the registry in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, then one
    /// `name{labels} value` sample per line, counters suffixed
    /// `_total`. Per-syscall samples are emitted only for nonzero
    /// counts, keeping the exposition proportional to actual use.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();

        out.push_str("# HELP idbox_syscalls_total Syscalls dispatched, by identity and syscall.\n");
        out.push_str("# TYPE idbox_syscalls_total counter\n");
        for (id, c) in &snap {
            for (slot, name) in self.names.iter().enumerate() {
                let n = c.syscall_count(slot);
                if n > 0 {
                    out.push_str(&format!(
                        "idbox_syscalls_total{{identity=\"{}\",syscall=\"{}\"}} {n}\n",
                        escape_label(id),
                        escape_label(name)
                    ));
                }
            }
        }

        type SimpleFamily = (&'static str, &'static str, &'static str, fn(&IdentityCounters) -> u64);
        let simple: [SimpleFamily; 12] = [
            (
                "idbox_bytes_read_total",
                "Payload bytes returned by read-family syscalls, by identity.",
                "counter",
                IdentityCounters::bytes_read,
            ),
            (
                "idbox_bytes_written_total",
                "Payload bytes accepted by write-family syscalls, by identity.",
                "counter",
                IdentityCounters::bytes_written,
            ),
            (
                "idbox_bytes_in_total",
                "Wire bytes received on this identity's connections.",
                "counter",
                IdentityCounters::bytes_in,
            ),
            (
                "idbox_bytes_out_total",
                "Wire bytes sent on this identity's connections.",
                "counter",
                IdentityCounters::bytes_out,
            ),
            (
                "idbox_denials_total",
                "Policy denials, by identity.",
                "counter",
                IdentityCounters::denials,
            ),
            (
                "idbox_reserve_amplifications_total",
                "Mkdirs allowed only via the reserve right, by identity.",
                "counter",
                IdentityCounters::reserve_amplifications,
            ),
            (
                "idbox_verdict_cache_hits_total",
                "ACL verdicts served from the generation-keyed cache, by identity.",
                "counter",
                IdentityCounters::verdict_cache_hits,
            ),
            (
                "idbox_verdict_cache_misses_total",
                "ACL verdicts that re-read the directory's ACL, by identity.",
                "counter",
                IdentityCounters::verdict_cache_misses,
            ),
            (
                "idbox_rpcs_shed_total",
                "RPCs refused by a load-shedding gate with a busy reply, by identity.",
                "counter",
                IdentityCounters::rpcs_shed,
            ),
            (
                "idbox_rpcs_retried_total",
                "RPCs that arrived marked as client retries, by identity.",
                "counter",
                IdentityCounters::rpcs_retried,
            ),
            (
                "idbox_active_sessions",
                "Sessions currently open, by identity.",
                "gauge",
                IdentityCounters::active_sessions,
            ),
            (
                "idbox_inflight_requests",
                "RPCs currently in dispatch, by identity.",
                "gauge",
                IdentityCounters::inflight,
            ),
        ];
        for (name, help, kind, get) in simple {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (id, c) in &snap {
                out.push_str(&format!(
                    "{name}{{identity=\"{}\"}} {}\n",
                    escape_label(id),
                    get(c)
                ));
            }
        }

        // The admission gate fires before authentication, so its count
        // has no identity label: one global sample.
        out.push_str(
            "# HELP idbox_admission_shed_total Connections refused at the accept loop \
             (over max_connections).\n# TYPE idbox_admission_shed_total counter\n",
        );
        out.push_str(&format!(
            "idbox_admission_shed_total {}\n",
            self.admission_shed()
        ));
        out
    }
}

/// Escape a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: &[&str] = &["getpid", "stat", "read", "write"];

    #[test]
    fn trace_id_round_trips_and_rejects_junk() {
        let id = next_trace_id();
        let s = id.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(s.parse::<TraceId>().unwrap(), id);
        assert!("".parse::<TraceId>().is_err());
        assert!("0000000000000000".parse::<TraceId>().is_err()); // zero = none
        assert!("00000000000000001".parse::<TraceId>().is_err()); // too long
        assert!("000000000000000g".parse::<TraceId>().is_err()); // not hex
        assert!("000000000000000F".parse::<TraceId>().is_err()); // uppercase
        assert_eq!("000000000000000f".parse::<TraceId>(), Ok(TraceId(0xf)));
    }

    #[test]
    fn trace_ids_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(next_trace_id()), "duplicate trace id");
        }
    }

    #[test]
    fn trace_cell_round_trips() {
        let cell = TraceCell::new();
        assert_eq!(cell.get(), None);
        let id = next_trace_id();
        cell.set(Some(id));
        assert_eq!(cell.get(), Some(id));
        cell.set(None);
        assert_eq!(cell.get(), None);
    }

    fn span(dur_ns: u64) -> Span {
        Span {
            trace: Some(TraceId(7)),
            phase: Phase::Dispatch,
            name: "stat".into(),
            identity: "globus:/O=UnivNowhere/CN=Fred".into(),
            start_ns: now_unix_ns(),
            dur_ns,
        }
    }

    #[test]
    fn slow_op_log_applies_threshold_and_bound() {
        let log = SlowOpLog::new(4, 100);
        assert!(!log.record(span(99)));
        assert!(log.is_empty());
        for i in 0..10 {
            assert!(log.record(span(100 + i)));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.capacity(), 4);
        assert_eq!(log.total_recorded(), 10);
        let snap = log.snapshot();
        assert_eq!(snap.last().unwrap().dur_ns, 109);
        assert_eq!(snap.first().unwrap().dur_ns, 106);
    }

    #[test]
    fn zero_threshold_records_everything() {
        let log = SlowOpLog::new(8, 0);
        assert!(log.record(span(0)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn counters_accumulate_per_identity() {
        let reg = IdentityMetrics::new(NAMES, 8);
        let fred = reg.handle("fred");
        let barney = reg.handle("barney");
        fred.bump_syscall(1);
        fred.bump_syscall(1);
        fred.add_bytes_read(4096);
        fred.bump_denial();
        barney.bump_syscall(0);
        barney.bump_reserve_amplification();
        // Re-requesting the handle returns the same counters.
        assert_eq!(reg.handle("fred").syscall_count(1), 2);
        assert_eq!(reg.handle("fred").bytes_read(), 4096);
        assert_eq!(reg.handle("fred").denials(), 1);
        assert_eq!(reg.handle("barney").reserve_amplifications(), 1);
        assert_eq!(reg.handle("barney").total_syscalls(), 1);
        // Out-of-range slots are ignored, not a panic.
        fred.bump_syscall(NAMES.len() + 5);
        assert_eq!(fred.total_syscalls(), 2);
    }

    #[test]
    fn session_gauge_saturates_at_zero() {
        let reg = IdentityMetrics::new(NAMES, 8);
        let c = reg.handle("fred");
        c.session_started();
        c.session_started();
        assert_eq!(c.active_sessions(), 2);
        c.session_ended();
        c.session_ended();
        c.session_ended(); // stray extra close
        assert_eq!(c.active_sessions(), 0);
    }

    #[test]
    fn registry_bounds_cardinality_and_evicts_oldest_idle() {
        let reg = IdentityMetrics::new(NAMES, 3);
        let a = reg.handle("a");
        a.session_started(); // active: protected from eviction
        reg.handle("b");
        reg.handle("c");
        assert_eq!(reg.identities(), 3);
        // "b" is the oldest idle entry; inserting "d" evicts it.
        reg.handle("c");
        reg.handle("d");
        assert_eq!(reg.identities(), 3);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "c", "d"]);
        // With every remaining entry active, the oldest still goes.
        for (_, c) in reg.snapshot() {
            c.session_started();
        }
        reg.handle("e");
        assert_eq!(reg.identities(), 3);
        assert!(reg.snapshot().iter().any(|(k, _)| k == "e"));
    }

    #[test]
    fn eviction_forgets_history() {
        let reg = IdentityMetrics::new(NAMES, 1);
        reg.handle("a").bump_syscall(0);
        reg.handle("b"); // evicts "a"
        assert_eq!(reg.handle("a").syscall_count(0), 0); // fresh counters, "b" evicted
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = IdentityMetrics::new(NAMES, 8);
        let c = reg.handle("globus:/O=UnivNowhere/CN=Fred");
        c.bump_syscall(1);
        c.add_bytes_written(512);
        c.session_started();
        let text = reg.render_prometheus();
        assert!(text.contains(
            "idbox_syscalls_total{identity=\"globus:/O=UnivNowhere/CN=Fred\",syscall=\"stat\"} 1\n"
        ));
        assert!(text.contains(
            "idbox_bytes_written_total{identity=\"globus:/O=UnivNowhere/CN=Fred\"} 512\n"
        ));
        assert!(text.contains("# TYPE idbox_active_sessions gauge\n"));
        assert!(text.contains("# TYPE idbox_syscalls_total counter\n"));
        assert!(text.contains("# TYPE idbox_verdict_cache_hits_total counter\n"));
        assert!(text.contains("# TYPE idbox_verdict_cache_misses_total counter\n"));
        assert!(text.contains("# TYPE idbox_rpcs_shed_total counter\n"));
        assert!(text.contains("# TYPE idbox_rpcs_retried_total counter\n"));
        assert!(text.contains("# TYPE idbox_inflight_requests gauge\n"));
        // The admission counter is global (fires pre-auth): label-less.
        assert!(text.contains("idbox_admission_shed_total 0\n"));
        // Zero-count syscalls are not emitted.
        assert!(!text.contains("syscall=\"getpid\""));
        // Every sample line is `name{labels} value` — except the global
        // admission sample, which carries no labels.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(head.starts_with("idbox_"), "bad family in {line:?}");
            if head != "idbox_admission_shed_total" {
                assert!(head.ends_with('}') && head.contains("{identity=\""));
            }
        }
    }

    #[test]
    fn degradation_counters_round_trip() {
        let reg = IdentityMetrics::new(NAMES, 8);
        let c = reg.handle("fred");
        c.bump_rpc_shed();
        c.bump_rpc_shed();
        c.bump_rpc_retried();
        c.rpc_started();
        c.rpc_started();
        c.rpc_finished();
        reg.bump_admission_shed();
        assert_eq!(c.rpcs_shed(), 2);
        assert_eq!(c.rpcs_retried(), 1);
        assert_eq!(c.inflight(), 1);
        assert_eq!(reg.admission_shed(), 1);
        // rpc_finished saturates instead of wrapping.
        c.rpc_finished();
        c.rpc_finished();
        assert_eq!(c.inflight(), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("idbox_rpcs_shed_total{identity=\"fred\"} 2\n"));
        assert!(text.contains("idbox_rpcs_retried_total{identity=\"fred\"} 1\n"));
        assert!(text.contains("idbox_inflight_requests{identity=\"fred\"} 0\n"));
        assert!(text.contains("idbox_admission_shed_total 1\n"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let reg = IdentityMetrics::new(NAMES, 8);
        reg.handle("odd\"name\\with\nstuff").bump_syscall(0);
        let text = reg.render_prometheus();
        assert!(text.contains("identity=\"odd\\\"name\\\\with\\nstuff\""));
    }
}
