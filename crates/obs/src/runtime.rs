//! Runtime health instruments: per-worker event-loop statistics and
//! the Prometheus rendering of the new self-observation families
//! (shard-lock waits, loop lag, flush/wakeup counters, gauges).
//!
//! The event loop bumps these through `&self` relaxed atomics — no
//! lock is ever taken on a readiness cycle. Rendering walks the same
//! atomics, so a scrape observes a consistent-enough point-in-time
//! view without stopping any worker.

use crate::escape_label;
use parking_lot::DomainLockSnapshot;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 microsecond buckets in a [`Log2HistoUs`].
pub const LOOP_LAG_BUCKETS: usize = 22;

fn bucket_of(us: u64) -> usize {
    let b = 63 - (us | 1).leading_zeros() as usize;
    b.min(LOOP_LAG_BUCKETS - 1)
}

/// Upper edge (inclusive, µs) of bucket `i`.
fn bucket_ceiling_us(i: usize) -> u64 {
    if i + 1 >= LOOP_LAG_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A log2 microsecond histogram with relaxed-atomic buckets.
#[derive(Debug, Default)]
pub struct Log2HistoUs {
    buckets: [AtomicU64; LOOP_LAG_BUCKETS],
    total_us: AtomicU64,
}

impl Log2HistoUs {
    /// Record one sample.
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Relaxed);
        self.total_us.fetch_add(us, Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all samples, microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_us.load(Relaxed)
    }

    fn load(&self) -> [u64; LOOP_LAG_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    /// Approximate percentile (bucket ceiling, µs); `None` when empty.
    pub fn percentile_us(&self, p: f64) -> Option<u64> {
        percentile_of(&self.load(), p)
    }
}

/// Percentile (bucket ceiling, µs) of an externally held loop-lag
/// bucket array — typically the difference of two
/// [`LoopStats::lag_buckets`] snapshots; `None` when empty.
pub fn lag_percentile_from(buckets: &[u64; LOOP_LAG_BUCKETS], p: f64) -> Option<u64> {
    percentile_of(buckets, p)
}

fn percentile_of(buckets: &[u64; LOOP_LAG_BUCKETS], p: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return Some(bucket_ceiling_us(i));
        }
    }
    Some(bucket_ceiling_us(LOOP_LAG_BUCKETS - 1))
}

/// Health counters for one event-loop worker.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Readiness-cycle duration histogram (poll return → all ready
    /// connections serviced and flushed), µs.
    pub lag: Log2HistoUs,
    wakeups: AtomicU64,
    flushes: AtomicU64,
    conns: AtomicU64,
    outbuf_hw: AtomicU64,
    stalls: AtomicU64,
}

impl WorkerStats {
    /// Count one poll return that reported readiness.
    pub fn bump_wakeup(&self) {
        self.wakeups.fetch_add(1, Relaxed);
    }

    /// Count one coalesced flush (a cycle-end write burst).
    pub fn bump_flush(&self) {
        self.flushes.fetch_add(1, Relaxed);
    }

    /// Count one tripped stall watchdog.
    pub fn bump_stall(&self) {
        self.stalls.fetch_add(1, Relaxed);
    }

    /// Publish the worker's current connection count.
    pub fn set_conns(&self, n: usize) {
        self.conns.store(n as u64, Relaxed);
    }

    /// Raise the output-buffer high watermark to `bytes` if higher.
    pub fn note_outbuf(&self, bytes: usize) {
        self.outbuf_hw.fetch_max(bytes as u64, Relaxed);
    }

    /// Poll returns that reported readiness.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Relaxed)
    }

    /// Coalesced flush bursts.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Relaxed)
    }

    /// Stall watchdog trips.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Relaxed)
    }

    /// Current connection count.
    pub fn conns(&self) -> u64 {
        self.conns.load(Relaxed)
    }

    /// Output-buffer high watermark, bytes.
    pub fn outbuf_hw(&self) -> u64 {
        self.outbuf_hw.load(Relaxed)
    }
}

/// Health counters for a pool of event-loop workers.
#[derive(Debug)]
pub struct LoopStats {
    workers: Box<[WorkerStats]>,
}

impl LoopStats {
    /// Stats for `n` workers (at least 1).
    pub fn new(n: usize) -> LoopStats {
        LoopStats {
            workers: (0..n.max(1)).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Per-worker stats, indexed by worker id.
    pub fn worker(&self, i: usize) -> &WorkerStats {
        &self.workers[i]
    }

    /// All workers.
    pub fn workers(&self) -> &[WorkerStats] {
        &self.workers
    }

    /// Loop-lag percentile merged across workers; `None` when no
    /// cycle has been recorded yet.
    pub fn lag_percentile_us(&self, p: f64) -> Option<u64> {
        percentile_of(&self.lag_buckets(), p)
    }

    /// The merged loop-lag histogram across workers — snapshot before
    /// and after a window, subtract, and feed [`lag_percentile_from`]
    /// to isolate the window's cycles.
    pub fn lag_buckets(&self) -> [u64; LOOP_LAG_BUCKETS] {
        let mut merged = [0u64; LOOP_LAG_BUCKETS];
        for w in self.workers.iter() {
            for (m, b) in merged.iter_mut().zip(w.lag.load().iter()) {
                *m += b;
            }
        }
        merged
    }

    /// Connections currently owned across all workers.
    pub fn conns_total(&self) -> u64 {
        self.workers.iter().map(|w| w.conns()).sum()
    }

    /// Stall watchdog trips across all workers.
    pub fn stalls_total(&self) -> u64 {
        self.workers.iter().map(|w| w.stalls()).sum()
    }

    /// Render the event-loop families in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE idbox_loop_lag_us histogram\n");
        for (i, w) in self.workers.iter().enumerate() {
            let buckets = w.lag.load();
            let mut cum = 0u64;
            for (b, n) in buckets.iter().enumerate() {
                cum += n;
                let le = bucket_ceiling_us(b);
                if le == u64::MAX {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "idbox_loop_lag_us_bucket{{worker=\"{i}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "idbox_loop_lag_us_bucket{{worker=\"{i}\",le=\"+Inf\"}} {cum}"
            );
            let _ = writeln!(
                out,
                "idbox_loop_lag_us_sum{{worker=\"{i}\"}} {}",
                w.lag.total_us()
            );
            let _ = writeln!(out, "idbox_loop_lag_us_count{{worker=\"{i}\"}} {cum}");
        }
        for (name, get) in [
            (
                "idbox_loop_wakeups_total",
                &(|w: &WorkerStats| w.wakeups()) as &dyn Fn(&WorkerStats) -> u64,
            ),
            ("idbox_loop_flushes_total", &|w: &WorkerStats| w.flushes()),
            ("idbox_loop_stalls_total", &|w: &WorkerStats| w.stalls()),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (i, w) in self.workers.iter().enumerate() {
                let _ = writeln!(out, "{name}{{worker=\"{i}\"}} {}", get(w));
            }
        }
        out.push_str("# TYPE idbox_loop_connections gauge\n");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(out, "idbox_loop_connections{{worker=\"{i}\"}} {}", w.conns());
        }
        out.push_str("# TYPE idbox_loop_outbuf_high_watermark_bytes gauge\n");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "idbox_loop_outbuf_high_watermark_bytes{{worker=\"{i}\"}} {}",
                w.outbuf_hw()
            );
        }
        out
    }
}

/// Render the shard-lock families from a [`parking_lot::lock_snapshot`]
/// in Prometheus text format: per-shard acquisition/wait counters and
/// the contended-wait histogram, keyed by `domain` and `shard`.
pub fn render_lock_prometheus(snaps: &[DomainLockSnapshot]) -> String {
    let mut out = String::new();
    out.push_str("# TYPE idbox_shard_lock_acquisitions_total counter\n");
    for d in snaps {
        for (i, s) in d.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "idbox_shard_lock_acquisitions_total{{domain=\"{}\",shard=\"{i}\"}} {}",
                escape_label(d.domain),
                s.acquisitions
            );
        }
    }
    out.push_str("# TYPE idbox_shard_lock_waits_total counter\n");
    for d in snaps {
        for (i, s) in d.shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "idbox_shard_lock_waits_total{{domain=\"{}\",shard=\"{i}\"}} {}",
                escape_label(d.domain),
                s.waits
            );
        }
    }
    out.push_str("# TYPE idbox_shard_lock_wait_us histogram\n");
    for d in snaps {
        for (i, s) in d.shards.iter().enumerate() {
            let mut cum = 0u64;
            for (b, n) in s.buckets.iter().enumerate() {
                cum += n;
                let le = parking_lot::lock_bucket_ceiling_us(b);
                if le == u64::MAX {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "idbox_shard_lock_wait_us_bucket{{domain=\"{}\",shard=\"{i}\",le=\"{le}\"}} {cum}",
                    escape_label(d.domain)
                );
            }
            let _ = writeln!(
                out,
                "idbox_shard_lock_wait_us_bucket{{domain=\"{}\",shard=\"{i}\",le=\"+Inf\"}} {cum}",
                escape_label(d.domain)
            );
            let _ = writeln!(
                out,
                "idbox_shard_lock_wait_us_sum{{domain=\"{}\",shard=\"{i}\"}} {}",
                escape_label(d.domain),
                s.wait_total_us
            );
            let _ = writeln!(
                out,
                "idbox_shard_lock_wait_us_count{{domain=\"{}\",shard=\"{i}\"}} {cum}",
                escape_label(d.domain)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::ShardLockSnapshot;

    #[test]
    fn histo_percentiles() {
        let h = Log2HistoUs::default();
        assert_eq!(h.percentile_us(99.0), None);
        for _ in 0..99 {
            h.record_us(100); // bucket 6, ceiling 127
        }
        h.record_us(100_000); // bucket 16
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(50.0), Some(127));
        assert_eq!(h.percentile_us(100.0), Some((1 << 17) - 1));
        assert!(h.total_us() >= 100 * 99 + 100_000);
    }

    #[test]
    fn loop_stats_render_and_merge() {
        let ls = LoopStats::new(2);
        ls.worker(0).bump_wakeup();
        ls.worker(0).bump_flush();
        ls.worker(0).lag.record_us(50);
        ls.worker(1).lag.record_us(5_000);
        ls.worker(1).set_conns(3);
        ls.worker(1).note_outbuf(9000);
        ls.worker(1).note_outbuf(100); // watermark does not regress
        ls.worker(1).bump_stall();
        assert_eq!(ls.conns_total(), 3);
        assert_eq!(ls.stalls_total(), 1);
        assert!(ls.lag_percentile_us(99.0).unwrap() >= 5_000);
        let text = ls.render_prometheus();
        assert!(text.contains("idbox_loop_lag_us_bucket{worker=\"0\",le=\"63\"} 1"));
        assert!(text.contains("idbox_loop_lag_us_bucket{worker=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("idbox_loop_wakeups_total{worker=\"0\"} 1"));
        assert!(text.contains("idbox_loop_flushes_total{worker=\"0\"} 1"));
        assert!(text.contains("idbox_loop_connections{worker=\"1\"} 3"));
        assert!(text.contains("idbox_loop_outbuf_high_watermark_bytes{worker=\"1\"} 9000"));
        assert!(text.contains("idbox_loop_stalls_total{worker=\"1\"} 1"));
    }

    #[test]
    fn lock_render_has_families_and_escapes() {
        let mut buckets = [0u64; parking_lot::LOCK_WAIT_BUCKETS];
        buckets[1] = 2;
        let shard = ShardLockSnapshot {
            acquisitions: 10,
            waits: 2,
            wait_total_us: 30,
            buckets,
        };
        let snap = DomainLockSnapshot {
            domain: "vfs",
            shards: vec![ShardLockSnapshot::default(), shard],
        };
        let text = render_lock_prometheus(&[snap]);
        assert!(text.contains("idbox_shard_lock_acquisitions_total{domain=\"vfs\",shard=\"1\"} 10"));
        assert!(text.contains("idbox_shard_lock_waits_total{domain=\"vfs\",shard=\"1\"} 2"));
        assert!(text.contains("idbox_shard_lock_wait_us_bucket{domain=\"vfs\",shard=\"1\",le=\"3\"} 2"));
        assert!(text.contains("idbox_shard_lock_wait_us_sum{domain=\"vfs\",shard=\"1\"} 30"));
        assert!(text.contains("idbox_shard_lock_wait_us_count{domain=\"vfs\",shard=\"1\"} 2"));
        assert!(text.contains("idbox_shard_lock_wait_us_bucket{domain=\"vfs\",shard=\"0\",le=\"+Inf\"} 0"));
    }
}
