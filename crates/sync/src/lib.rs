//! In-tree lock primitives with the `parking_lot` API shape.
//!
//! The build environment is fully offline, so the external `parking_lot`
//! crate cannot be fetched; the workspace instead aliases `parking_lot`
//! to this crate (see the root `Cargo.toml`). The surface mirrors the
//! subset the codebase uses: guards come back directly from
//! `lock()`/`read()`/`write()` with no `Result`, and poisoning is
//! transparent — a panic while holding a lock does not wedge every
//! later caller, matching `parking_lot` semantics closely enough for
//! our supervisors, servers, and benches.

use std::sync::TryLockError;

mod profile;

pub use profile::{
    lock_bucket_ceiling_us, lock_profiling_enabled, lock_snapshot, lock_wait_percentile_us,
    set_contention_hook, set_lock_profiling, ContentionHook, DomainLockSnapshot, DomainProfile,
    ProfiledMutex, ProfiledRwLock, ShardLockSnapshot, LOCK_WAIT_BUCKETS,
};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose guards come back without a `Result`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poison-transparent.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Poison-transparent.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Compatibility alias for call sites written against the old
    /// `Mutex`-shaped `SharedKernel`: an exclusive guard. Setup and
    /// test code uses this freely; hot paths should pick `read()` or
    /// `write()` explicitly.
    pub fn lock(&self) -> RwLockWriteGuard<'_, T> {
        self.write()
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A fixed array of independently locked shards: the building block for
/// the kernel's sharded domains (inode space, process table).
///
/// Keys are mapped to shards by `key % len`, so two keys in different
/// shards never contend. The danger in any sharded design is lock
/// ordering, and `ShardSet` centralizes the discipline:
///
/// 1. **One shard → one lock.** Operations touching a single shard use
///    [`ShardSet::read`] / [`ShardSet::write`] and hold nothing else.
/// 2. **Multiple shards → ascending index order.** Operations that must
///    hold several shards at once ([`ShardSet::write_pair`],
///    [`ShardSet::write_many`], [`ShardSet::write_all`],
///    [`ShardSet::read_all`]) always acquire in ascending shard index,
///    which makes a deadlock cycle between them impossible.
/// 3. **Never hold shard guards from two different `ShardSet`s** (or
///    other domain locks) at once; cross-domain work is sequenced as
///    acquire → release → acquire.
///
/// Violating rule 2 by hand (e.g. taking `write(5)` and then `write(2)`)
/// can deadlock against any multi-shard writer; that is why the batch
/// acquisition helpers exist.
pub struct ShardSet<T> {
    shards: Box<[RwLock<T>]>,
    profile: Option<std::sync::Arc<DomainProfile>>,
}

impl<T> ShardSet<T> {
    /// Build `n` shards (at least 1), each initialized by `init(i)`.
    pub fn from_fn(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        let n = n.max(1);
        let shards: Vec<RwLock<T>> = (0..n).map(|i| RwLock::new(init(i))).collect();
        ShardSet {
            shards: shards.into_boxed_slice(),
            profile: None,
        }
    }

    /// Like [`ShardSet::from_fn`], but registered under `name` in the
    /// process-wide lock profile (see [`lock_snapshot`]): every
    /// acquisition is counted per shard and contended waits are
    /// histogrammed, unless `IDBOX_LOCK_PROFILE=0`.
    pub fn from_fn_named(name: &'static str, n: usize, init: impl FnMut(usize) -> T) -> Self {
        let mut s = Self::from_fn(n, init);
        s.profile = Some(DomainProfile::register(name, s.shards.len()));
        s
    }

    fn lock_read(&self, idx: usize) -> RwLockReadGuard<'_, T> {
        match &self.profile {
            Some(p) => p.acquire(
                idx,
                || self.shards[idx].try_read(),
                || self.shards[idx].read(),
            ),
            None => self.shards[idx].read(),
        }
    }

    fn lock_write(&self, idx: usize) -> RwLockWriteGuard<'_, T> {
        match &self.profile {
            Some(p) => p.acquire(
                idx,
                || self.shards[idx].try_write(),
                || self.shards[idx].write(),
            ),
            None => self.shards[idx].write(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false: a `ShardSet` has at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard index a key hashes to.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Shared guard for one shard (rule 1: hold nothing else).
    pub fn read(&self, idx: usize) -> RwLockReadGuard<'_, T> {
        self.lock_read(idx)
    }

    /// Exclusive guard for one shard (rule 1: hold nothing else).
    pub fn write(&self, idx: usize) -> RwLockWriteGuard<'_, T> {
        self.lock_write(idx)
    }

    /// Exclusive guards for two shards, acquired in ascending index
    /// order regardless of argument order. Returns `(guard_for_a,
    /// guard_for_b)`; `b`'s slot is `None` when both indices name the
    /// same shard (use `a`'s guard for both roles).
    pub fn write_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (RwLockWriteGuard<'_, T>, Option<RwLockWriteGuard<'_, T>>) {
        if a == b {
            (self.lock_write(a), None)
        } else if a < b {
            let ga = self.lock_write(a);
            let gb = self.lock_write(b);
            (ga, Some(gb))
        } else {
            let gb = self.lock_write(b);
            let ga = self.lock_write(a);
            (ga, Some(gb))
        }
    }

    /// Exclusive guards for an arbitrary shard set, acquired in
    /// ascending index order. Duplicates are collapsed; the result is
    /// addressed by shard index via [`ShardMultiGuard::get_mut`].
    pub fn write_many(&self, idxs: &[usize]) -> ShardMultiGuard<'_, T> {
        let mut order: Vec<usize> = idxs.to_vec();
        order.sort_unstable();
        order.dedup();
        let guards = order
            .into_iter()
            .map(|i| (i, self.lock_write(i)))
            .collect();
        ShardMultiGuard { guards }
    }

    /// Exclusive guards for every shard, ascending.
    pub fn write_all(&self) -> Vec<RwLockWriteGuard<'_, T>> {
        (0..self.shards.len()).map(|i| self.lock_write(i)).collect()
    }

    /// Shared guards for every shard, ascending. Used for consistent
    /// whole-structure snapshots (e.g. `Clone`).
    pub fn read_all(&self) -> Vec<RwLockReadGuard<'_, T>> {
        (0..self.shards.len()).map(|i| self.lock_read(i)).collect()
    }

    /// Lock-free access to every shard (requires exclusive ownership).
    pub fn get_mut_all(&mut self) -> Vec<&mut T> {
        self.shards.iter_mut().map(|s| s.get_mut()).collect()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ShardSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardSet({} shards)", self.shards.len())
    }
}

/// Guards held by [`ShardSet::write_many`], addressable by shard index.
pub struct ShardMultiGuard<'a, T> {
    guards: Vec<(usize, RwLockWriteGuard<'a, T>)>,
}

impl<T> ShardMultiGuard<'_, T> {
    /// Exclusive access to the shard locked under `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was not part of the `write_many` request.
    pub fn get_mut(&mut self, idx: usize) -> &mut T {
        let pos = self
            .guards
            .iter()
            .position(|(i, _)| *i == idx)
            .expect("shard index not covered by write_many");
        &mut self.guards[pos].1
    }

    /// Shared access to the shard locked under `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was not part of the `write_many` request.
    pub fn get(&self, idx: usize) -> &T {
        let pos = self
            .guards
            .iter()
            .position(|(i, _)| *i == idx)
            .expect("shard index not covered by write_many");
        &self.guards[pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        // The Mutex-compat alias takes the exclusive guard.
        *l.lock() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poison_is_transparent() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn shard_set_routes_keys() {
        let s: ShardSet<u64> = ShardSet::from_fn(4, |i| i as u64);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.shard_of(0), 0);
        assert_eq!(s.shard_of(7), 3);
        assert_eq!(*s.read(s.shard_of(6)), 2);
        *s.write(1) += 10;
        assert_eq!(*s.read(1), 11);
    }

    #[test]
    fn shard_set_clamps_to_one() {
        let s: ShardSet<u32> = ShardSet::from_fn(0, |_| 9);
        assert_eq!(s.len(), 1);
        assert_eq!(s.shard_of(12345), 0);
    }

    #[test]
    fn write_pair_handles_order_and_aliasing() {
        let s: ShardSet<u32> = ShardSet::from_fn(4, |_| 0);
        // Descending request still returns (guard_for_a, guard_for_b).
        {
            let (mut ga, gb) = s.write_pair(3, 1);
            *ga = 3;
            *gb.expect("distinct shards") = 1;
        }
        assert_eq!(*s.read(3), 3);
        assert_eq!(*s.read(1), 1);
        // Same shard twice: a single guard.
        let (mut ga, gb) = s.write_pair(2, 2);
        assert!(gb.is_none());
        *ga = 2;
    }

    #[test]
    fn write_many_dedups_and_addresses_by_index() {
        let s: ShardSet<u32> = ShardSet::from_fn(8, |_| 0);
        let mut g = s.write_many(&[5, 2, 5, 7]);
        *g.get_mut(5) += 1;
        *g.get_mut(2) += 2;
        *g.get_mut(7) += 3;
        assert_eq!(*g.get(5), 1);
        drop(g);
        assert_eq!(*s.read(2), 2);
    }

    #[test]
    fn concurrent_pair_writers_do_not_deadlock() {
        // Opposite-order pair requests from many threads: ascending
        // acquisition must prevent the classic AB/BA deadlock.
        let s: Arc<ShardSet<u64>> = Arc::new(ShardSet::from_fn(2, |_| 0));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let (a, b) = if t % 2 == 0 { (0, 1) } else { (1, 0) };
                        let (mut ga, gb) = s.write_pair(a, b);
                        *ga += 1;
                        *gb.unwrap() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*s.read(0) + *s.read(1), 2 * 8 * 200);
    }
}
