//! In-tree lock primitives with the `parking_lot` API shape.
//!
//! The build environment is fully offline, so the external `parking_lot`
//! crate cannot be fetched; the workspace instead aliases `parking_lot`
//! to this crate (see the root `Cargo.toml`). The surface mirrors the
//! subset the codebase uses: guards come back directly from
//! `lock()`/`read()`/`write()` with no `Result`, and poisoning is
//! transparent — a panic while holding a lock does not wedge every
//! later caller, matching `parking_lot` semantics closely enough for
//! our supervisors, servers, and benches.

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose guards come back without a `Result`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Poison-transparent.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard. Poison-transparent.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Compatibility alias for call sites written against the old
    /// `Mutex`-shaped `SharedKernel`: an exclusive guard. Setup and
    /// test code uses this freely; hot paths should pick `read()` or
    /// `write()` explicitly.
    pub fn lock(&self) -> RwLockWriteGuard<'_, T> {
        self.write()
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
        // The Mutex-compat alias takes the exclusive guard.
        *l.lock() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn poison_is_transparent() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

}
