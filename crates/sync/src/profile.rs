//! Lock/shard contention profiling.
//!
//! Every named lock domain (the Vfs inode shards, the process-table
//! shards, the pipe/mount/accounts leaf locks) registers a
//! [`DomainProfile`] here: per-shard acquisition counters plus a log2
//! microsecond wait histogram. The fast path is deliberately cheap —
//! an uncontended acquisition is one `try_lock` plus two relaxed
//! atomic increments, and no clock is read at all. Only when the try
//! fails (real contention) do we take an `Instant` pair around the
//! blocking acquisition and bucket the wait.
//!
//! `IDBOX_LOCK_PROFILE=0` (or `false`/`off`) disables profiling at
//! startup; [`set_lock_profiling`] toggles it at runtime (used by the
//! bench overhead gate). Disabled means a single relaxed atomic load
//! per acquisition and nothing else.
//!
//! This crate sits below `idbox-obs` in the dependency order, so
//! rendering (Prometheus, flight-recorder joining) lives upstream:
//! obs installs a [`ContentionHook`] to tag shard waits with the
//! current trace, and pulls plain-data [`lock_snapshot`]s to render.

use crate::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of log2 wait-time buckets. Bucket `i` holds waits whose
/// microsecond value has floor(log2) == i; the top bucket (~2.1s and
/// beyond) catches pathological stalls.
pub const LOCK_WAIT_BUCKETS: usize = 22;

/// Upper edge (inclusive, µs) of wait bucket `i`, for rendering.
pub fn lock_bucket_ceiling_us(i: usize) -> u64 {
    if i + 1 >= LOCK_WAIT_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

fn bucket_of(us: u64) -> usize {
    let b = 63 - (us | 1).leading_zeros() as usize;
    b.min(LOCK_WAIT_BUCKETS - 1)
}

fn flag() -> &'static AtomicBool {
    static F: OnceLock<AtomicBool> = OnceLock::new();
    F.get_or_init(|| {
        let on = std::env::var("IDBOX_LOCK_PROFILE")
            .map(|v| !matches!(v.trim(), "0" | "false" | "off"))
            .unwrap_or(true);
        AtomicBool::new(on)
    })
}

/// Whether lock profiling is currently recording.
pub fn lock_profiling_enabled() -> bool {
    flag().load(Relaxed)
}

/// Runtime override of the `IDBOX_LOCK_PROFILE` startup default.
pub fn set_lock_profiling(on: bool) {
    flag().store(on, Relaxed);
}

/// Callback invoked on every profiled acquisition: `(domain, shard,
/// wait_us)` — `wait_us` is 0 for uncontended acquisitions. Installed
/// once (by `idbox-obs`) to join shard waits to the current trace.
pub type ContentionHook = dyn Fn(&'static str, usize, u64) + Send + Sync;

static HOOK: OnceLock<Box<ContentionHook>> = OnceLock::new();

/// Install the process-wide contention hook. First caller wins;
/// later installs are ignored.
pub fn set_contention_hook(hook: Box<ContentionHook>) {
    let _ = HOOK.set(hook);
}

struct ShardProfile {
    acquisitions: AtomicU64,
    waits: AtomicU64,
    wait_total_us: AtomicU64,
    buckets: [AtomicU64; LOCK_WAIT_BUCKETS],
}

impl ShardProfile {
    fn new() -> Self {
        ShardProfile {
            acquisitions: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            wait_total_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Per-shard acquisition and wait accounting for one named lock domain.
pub struct DomainProfile {
    name: &'static str,
    shards: Box<[ShardProfile]>,
}

static REGISTRY: Mutex<Vec<Arc<DomainProfile>>> = Mutex::new(Vec::new());

impl DomainProfile {
    /// Register (or re-join) the domain `name` with `shards` shards.
    /// Re-registering the same name and shard count returns the same
    /// profile, so short-lived kernels (tests, benches, clones)
    /// aggregate into one set of counters and the registry stays
    /// bounded by the number of distinct domain shapes.
    pub fn register(name: &'static str, shards: usize) -> Arc<DomainProfile> {
        let shards = shards.max(1);
        let mut reg = REGISTRY.lock();
        if let Some(d) = reg
            .iter()
            .find(|d| d.name == name && d.shards.len() == shards)
        {
            return Arc::clone(d);
        }
        let d = Arc::new(DomainProfile {
            name,
            shards: (0..shards).map(|_| ShardProfile::new()).collect(),
        });
        reg.push(Arc::clone(&d));
        d
    }

    /// Domain name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn note(&self, shard: usize, wait_us: u64, contended: bool) {
        let s = &self.shards[shard];
        s.acquisitions.fetch_add(1, Relaxed);
        if contended {
            s.waits.fetch_add(1, Relaxed);
            s.wait_total_us.fetch_add(wait_us, Relaxed);
            s.buckets[bucket_of(wait_us)].fetch_add(1, Relaxed);
        }
        if let Some(h) = HOOK.get() {
            h(self.name, shard, wait_us);
        }
    }

    /// Profile one acquisition of shard `shard`: `try_get` is the
    /// non-blocking attempt, `get` the blocking fallback. The clock is
    /// read only when the try fails.
    #[inline]
    pub fn acquire<G>(
        &self,
        shard: usize,
        try_get: impl FnOnce() -> Option<G>,
        get: impl FnOnce() -> G,
    ) -> G {
        if !lock_profiling_enabled() {
            return get();
        }
        if let Some(g) = try_get() {
            self.note(shard, 0, false);
            return g;
        }
        let t0 = Instant::now();
        let g = get();
        self.note(shard, t0.elapsed().as_micros() as u64, true);
        g
    }

    fn snapshot(&self) -> DomainLockSnapshot {
        DomainLockSnapshot {
            domain: self.name,
            shards: self
                .shards
                .iter()
                .map(|s| ShardLockSnapshot {
                    acquisitions: s.acquisitions.load(Relaxed),
                    waits: s.waits.load(Relaxed),
                    wait_total_us: s.wait_total_us.load(Relaxed),
                    buckets: std::array::from_fn(|i| s.buckets[i].load(Relaxed)),
                })
                .collect(),
        }
    }
}

/// Point-in-time counters for one shard of a domain.
#[derive(Clone, Debug, Default)]
pub struct ShardLockSnapshot {
    /// Total profiled acquisitions (contended or not).
    pub acquisitions: u64,
    /// Acquisitions that blocked (the `try` failed).
    pub waits: u64,
    /// Sum of contended wait time, microseconds.
    pub wait_total_us: u64,
    /// log2 µs histogram of contended waits.
    pub buckets: [u64; LOCK_WAIT_BUCKETS],
}

/// Point-in-time counters for a whole named domain.
#[derive(Clone, Debug)]
pub struct DomainLockSnapshot {
    /// Domain name as registered (`"vfs"`, `"proc"`, ...).
    pub domain: &'static str,
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardLockSnapshot>,
}

impl DomainLockSnapshot {
    /// Total acquisitions across shards.
    pub fn acquisitions(&self) -> u64 {
        self.shards.iter().map(|s| s.acquisitions).sum()
    }

    /// Total contended acquisitions across shards.
    pub fn waits(&self) -> u64 {
        self.shards.iter().map(|s| s.waits).sum()
    }

    /// Total contended wait time across shards, microseconds.
    pub fn wait_total_us(&self) -> u64 {
        self.shards.iter().map(|s| s.wait_total_us).sum()
    }

    /// Wait histogram merged across shards.
    pub fn merged_buckets(&self) -> [u64; LOCK_WAIT_BUCKETS] {
        let mut out = [0u64; LOCK_WAIT_BUCKETS];
        for s in &self.shards {
            for (o, b) in out.iter_mut().zip(s.buckets.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Approximate percentile of contended wait time (µs), `None` when
    /// no waits were recorded. Reports the ceiling of the bucket the
    /// percentile falls in, like the syscall latency histograms.
    pub fn wait_percentile_us(&self, p: f64) -> Option<u64> {
        percentile_of(&self.merged_buckets(), p)
    }

    /// Counter delta `self - earlier`, saturating per field so a
    /// mismatched or restarted baseline yields zeros, not wraps.
    pub fn diff(&self, earlier: &DomainLockSnapshot) -> DomainLockSnapshot {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let e = earlier.shards.get(i).cloned().unwrap_or_default();
                ShardLockSnapshot {
                    acquisitions: s.acquisitions.saturating_sub(e.acquisitions),
                    waits: s.waits.saturating_sub(e.waits),
                    wait_total_us: s.wait_total_us.saturating_sub(e.wait_total_us),
                    buckets: std::array::from_fn(|b| s.buckets[b].saturating_sub(e.buckets[b])),
                }
            })
            .collect();
        DomainLockSnapshot {
            domain: self.domain,
            shards,
        }
    }
}

fn percentile_of(buckets: &[u64; LOCK_WAIT_BUCKETS], p: f64) -> Option<u64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return Some(lock_bucket_ceiling_us(i));
        }
    }
    Some(lock_bucket_ceiling_us(LOCK_WAIT_BUCKETS - 1))
}

/// Snapshot every registered domain.
pub fn lock_snapshot() -> Vec<DomainLockSnapshot> {
    REGISTRY.lock().iter().map(|d| d.snapshot()).collect()
}

/// Merged wait percentile (µs) across a set of domain snapshots;
/// `None` when nothing waited.
pub fn lock_wait_percentile_us(snaps: &[DomainLockSnapshot], p: f64) -> Option<u64> {
    let mut merged = [0u64; LOCK_WAIT_BUCKETS];
    for s in snaps {
        for (m, b) in merged.iter_mut().zip(s.merged_buckets().iter()) {
            *m += b;
        }
    }
    percentile_of(&merged, p)
}

/// A [`Mutex`] that reports acquisitions to a one-shard profile
/// domain. Used for the kernel's leaf locks (pipes, pid allocator).
pub struct ProfiledMutex<T> {
    inner: Mutex<T>,
    profile: Arc<DomainProfile>,
}

impl<T> ProfiledMutex<T> {
    /// Create a profiled mutex under domain `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        ProfiledMutex {
            inner: Mutex::new(value),
            profile: DomainProfile::register(name, 1),
        }
    }

    /// Acquire the lock, recording contention.
    pub fn lock(&self) -> crate::MutexGuard<'_, T> {
        self.profile
            .acquire(0, || self.inner.try_lock(), || self.inner.lock())
    }

    /// Try to acquire without blocking (not profiled as a wait).
    pub fn try_lock(&self) -> Option<crate::MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ProfiledMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProfiledMutex").field(&self.inner).finish()
    }
}

/// An [`crate::RwLock`] that reports acquisitions to a one-shard
/// profile domain. Used for the kernel's mount and accounts locks.
pub struct ProfiledRwLock<T> {
    inner: crate::RwLock<T>,
    profile: Arc<DomainProfile>,
}

impl<T> ProfiledRwLock<T> {
    /// Create a profiled rwlock under domain `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        ProfiledRwLock {
            inner: crate::RwLock::new(value),
            profile: DomainProfile::register(name, 1),
        }
    }

    /// Shared guard, recording contention.
    pub fn read(&self) -> crate::RwLockReadGuard<'_, T> {
        self.profile
            .acquire(0, || self.inner.try_read(), || self.inner.read())
    }

    /// Exclusive guard, recording contention.
    pub fn write(&self) -> crate::RwLockWriteGuard<'_, T> {
        self.profile
            .acquire(0, || self.inner.try_write(), || self.inner.write())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ProfiledRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProfiledRwLock").field(&self.inner).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and the counters are process-global; serialize
    // the tests that toggle or assert on them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), LOCK_WAIT_BUCKETS - 1);
        assert_eq!(lock_bucket_ceiling_us(0), 1);
        assert_eq!(lock_bucket_ceiling_us(1), 3);
        assert_eq!(lock_bucket_ceiling_us(LOCK_WAIT_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn register_dedups_by_name_and_shape() {
        let a = DomainProfile::register("prof-test-dedup", 4);
        let b = DomainProfile::register("prof-test-dedup", 4);
        assert!(Arc::ptr_eq(&a, &b));
        let c = DomainProfile::register("prof-test-dedup", 8);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn contended_acquisition_is_bucketed() {
        let _g = TEST_LOCK.lock();
        let d = DomainProfile::register("prof-test-contended", 2);
        let before = d.snapshot();
        // Uncontended: try succeeds.
        d.acquire(1, || Some(()), || ());
        // Contended: try fails, blocking path "waits".
        d.acquire(
            1,
            || None,
            || std::thread::sleep(std::time::Duration::from_millis(3)),
        );
        let got = d.snapshot().diff(&before);
        assert_eq!(got.acquisitions(), 2);
        assert_eq!(got.waits(), 1);
        assert!(got.wait_total_us() >= 2_000, "{}", got.wait_total_us());
        assert!(got.wait_percentile_us(99.0).unwrap() >= 2_000);
        assert_eq!(got.shards[0].acquisitions, 0);
    }

    #[test]
    fn disabled_profiling_records_nothing() {
        let _g = TEST_LOCK.lock();
        let d = DomainProfile::register("prof-test-disabled", 1);
        let before = d.snapshot();
        set_lock_profiling(false);
        d.acquire(0, || Some(()), || ());
        set_lock_profiling(true);
        let got = d.snapshot().diff(&before);
        assert_eq!(got.acquisitions(), 0);
    }

    #[test]
    fn empty_percentile_is_none_and_diff_saturates() {
        let empty = DomainLockSnapshot {
            domain: "x",
            shards: vec![ShardLockSnapshot::default()],
        };
        assert_eq!(empty.wait_percentile_us(50.0), None);
        assert_eq!(
            lock_wait_percentile_us(std::slice::from_ref(&empty), 99.0),
            None
        );
        // A later snapshot with smaller counters (restart) diffs to 0.
        let mut big = empty.clone();
        big.shards[0].acquisitions = 10;
        let d = empty.diff(&big);
        assert_eq!(d.acquisitions(), 0);
    }

    #[test]
    fn profiled_leaf_locks_count() {
        let _g = TEST_LOCK.lock();
        let m = ProfiledMutex::new("prof-test-leaf-m", 0u32);
        let before = lock_snapshot()
            .into_iter()
            .find(|d| d.domain == "prof-test-leaf-m")
            .unwrap();
        *m.lock() += 1;
        *m.lock() += 1;
        let after = lock_snapshot()
            .into_iter()
            .find(|d| d.domain == "prof-test-leaf-m")
            .unwrap();
        assert_eq!(after.diff(&before).acquisitions(), 2);

        let l = ProfiledRwLock::new("prof-test-leaf-rw", 0u32);
        let _r = l.read();
        drop(_r);
        *l.write() = 5;
        let snap = lock_snapshot()
            .into_iter()
            .find(|d| d.domain == "prof-test-leaf-rw")
            .unwrap();
        assert_eq!(snap.acquisitions(), 2);
        assert_eq!(*l.read(), 5);
    }
}
