//! Deterministic fault injection for the robustness test suite.
//!
//! Every failure mode the Chirp stack must survive — dropped
//! connections, truncated replies, wire delays, slow readers, and I/O
//! errors inside the filesystem — is driven from one seeded
//! [`FaultPlan`], so a CI failure reproduces exactly from the seed
//! instead of depending on the weather of the host network stack.
//!
//! Two injection surfaces share the plan:
//!
//! * **Wire** — [`FaultyStream`] wraps any `Read + Write` transport and
//!   consults the plan on each operation (unit-level: codec tests),
//!   and [`FaultProxy`] forwards real TCP between a client and a
//!   server, injecting the same faults mid-connection (e2e-level: a
//!   `ChirpClient` dials the proxy and the proxy dials the server, so
//!   neither side needs test hooks).
//! * **Vfs** — [`FaultPlan::vfs_fault`] is what a filesystem
//!   errno-injection hook calls per data operation; armed errnos pop
//!   first, then the seeded `vfs_eio_ppm` rate draws.
//!
//! Faults come in two flavours, usable together: **armed** faults are
//! an explicit FIFO per direction (`arm`) consumed one per operation —
//! the deterministic scalpel for "truncate exactly the next reply" —
//! and **rate** faults are seeded random draws (`drop_ppm` per
//! request line on the wire, `vfs_eio_ppm` per filesystem data op) for
//! sustained-degradation runs.

use crate::TestRng;
use idbox_types::Errno;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close the connection (reads see EOF, writes see a broken pipe).
    Drop,
    /// Fail the operation with an I/O error without closing anything.
    Eio,
    /// Sleep this long, then perform the operation normally.
    Delay(Duration),
    /// Deliver at most this many bytes of the next transfer, then
    /// behave like [`Fault::Drop`].
    Truncate(usize),
    /// Deliver the next transfer one byte at a time (a slow peer; with
    /// an `io_timeout` on the other side this becomes a timeout fault).
    SlowRead,
}

/// Which direction of a connection a wire fault applies to, from the
/// client's point of view: `Tx` is client→server (requests), `Rx` is
/// server→client (replies). For a bare [`FaultyStream`], `Tx` guards
/// writes and `Rx` guards reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Client→server / the write side.
    Tx,
    /// Server→client / the read side.
    Rx,
}

#[derive(Debug)]
struct PlanInner {
    rng: Mutex<TestRng>,
    tx: Mutex<VecDeque<Fault>>,
    rx: Mutex<VecDeque<Fault>>,
    vfs: Mutex<VecDeque<Errno>>,
    /// Armed filesystem *delays*: the hooked data op sleeps this long,
    /// then proceeds normally — a slow disk rather than a broken one.
    vfs_slow: Mutex<VecDeque<Duration>>,
    /// Per-request probability (parts per million) that the wire drops
    /// the connection at that request boundary.
    drop_ppm: u32,
    /// Per-data-op probability (ppm) that the filesystem reports EIO.
    vfs_eio_ppm: u32,
    wire_injected: AtomicU64,
    vfs_injected: AtomicU64,
}

/// A seeded, shareable (`Clone` = same plan) fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// A plan with no random faults: only what [`FaultPlan::arm`] /
    /// [`FaultPlan::arm_vfs`] queue up will fire.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan::with_rates(seed, 0, 0)
    }

    /// A plan that also draws seeded random faults: `drop_ppm` per
    /// request line on the wire (connection drop), `vfs_eio_ppm` per
    /// filesystem data operation (EIO). 100_000 ppm = 10 %.
    pub fn with_rates(seed: u64, drop_ppm: u32, vfs_eio_ppm: u32) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(PlanInner {
                rng: Mutex::new(TestRng::new(seed)),
                tx: Mutex::new(VecDeque::new()),
                rx: Mutex::new(VecDeque::new()),
                vfs: Mutex::new(VecDeque::new()),
                vfs_slow: Mutex::new(VecDeque::new()),
                drop_ppm,
                vfs_eio_ppm,
                wire_injected: AtomicU64::new(0),
                vfs_injected: AtomicU64::new(0),
            }),
        }
    }

    fn queue(&self, dir: Dir) -> &Mutex<VecDeque<Fault>> {
        match dir {
            Dir::Tx => &self.inner.tx,
            Dir::Rx => &self.inner.rx,
        }
    }

    /// Queue one wire fault for `dir`; armed faults fire in FIFO order,
    /// one per wire operation, before any rate draw.
    pub fn arm(&self, dir: Dir, fault: Fault) {
        self.queue(dir).lock().unwrap().push_back(fault);
    }

    /// Queue one filesystem errno; popped by the next hooked data op.
    pub fn arm_vfs(&self, errno: Errno) {
        self.inner.vfs.lock().unwrap().push_back(errno);
    }

    /// Queue one filesystem *delay*: the next hooked data op that calls
    /// [`FaultPlan::vfs_slow`] sleeps this long and then proceeds. The
    /// deterministic way to wedge exactly one dispatch — what the
    /// event-loop stall-watchdog tests are built on.
    pub fn arm_vfs_slow(&self, d: Duration) {
        self.inner.vfs_slow.lock().unwrap().push_back(d);
    }

    /// Pop the next armed filesystem delay, if any. A sleeping hook
    /// calls this *in addition to* [`FaultPlan::vfs_fault`]:
    ///
    /// ```ignore
    /// FaultHook::new(move |op, _ino| {
    ///     if let Some(d) = plan.vfs_slow(op) {
    ///         std::thread::sleep(d);
    ///     }
    ///     plan.vfs_fault(op)
    /// })
    /// ```
    pub fn vfs_slow(&self, _op: &str) -> Option<Duration> {
        let d = self.inner.vfs_slow.lock().unwrap().pop_front();
        if d.is_some() {
            self.inner.vfs_injected.fetch_add(1, Ordering::Relaxed);
        }
        d
    }

    /// Pop the next armed wire fault for `dir`, if any.
    pub fn take(&self, dir: Dir) -> Option<Fault> {
        let f = self.queue(dir).lock().unwrap().pop_front();
        if f.is_some() {
            self.inner.wire_injected.fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// One seeded draw at the configured per-request drop rate; `true`
    /// means "drop the connection here".
    pub fn draw_drop(&self) -> bool {
        if self.inner.drop_ppm == 0 {
            return false;
        }
        let hit = self.inner.rng.lock().unwrap().below(1_000_000) < u64::from(self.inner.drop_ppm);
        if hit {
            self.inner.wire_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// What a Vfs errno-injection hook calls once per data operation:
    /// armed errnos pop first, then the seeded EIO rate draws. The
    /// `_op` name ("read"/"write") is accepted so a hook closure can
    /// filter before consulting the plan.
    pub fn vfs_fault(&self, _op: &str) -> Option<Errno> {
        if let Some(e) = self.inner.vfs.lock().unwrap().pop_front() {
            self.inner.vfs_injected.fetch_add(1, Ordering::Relaxed);
            return Some(e);
        }
        if self.inner.vfs_eio_ppm > 0
            && self.inner.rng.lock().unwrap().below(1_000_000) < u64::from(self.inner.vfs_eio_ppm)
        {
            self.inner.vfs_injected.fetch_add(1, Ordering::Relaxed);
            return Some(Errno::EIO);
        }
        None
    }

    /// Wire faults injected so far (armed pops + rate drops).
    pub fn wire_injected(&self) -> u64 {
        self.inner.wire_injected.load(Ordering::Relaxed)
    }

    /// Filesystem faults injected so far.
    pub fn vfs_injected(&self) -> u64 {
        self.inner.vfs_injected.load(Ordering::Relaxed)
    }
}

fn injected_eio() -> std::io::Error {
    std::io::Error::other("injected EIO")
}

/// A `Read + Write` wrapper that consults a [`FaultPlan`] on every
/// operation: reads pop `Rx` faults, writes pop `Tx` faults. Once a
/// `Drop`/`Truncate` fault fires the stream is dead — reads return EOF
/// and writes a broken pipe — exactly like a closed socket.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStream<S> {
        FaultyStream {
            inner,
            plan,
            dead: false,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Whether a fault has closed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead || buf.is_empty() {
            return Ok(0);
        }
        match self.plan.take(Dir::Rx) {
            Some(Fault::Drop) => {
                self.dead = true;
                Ok(0)
            }
            Some(Fault::Eio) => Err(injected_eio()),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(Fault::Truncate(n)) => {
                self.dead = true;
                let cap = n.min(buf.len());
                if cap == 0 {
                    return Ok(0);
                }
                self.inner.read(&mut buf[..cap])
            }
            Some(Fault::SlowRead) => self.inner.read(&mut buf[..1]),
            None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        }
        match self.plan.take(Dir::Tx) {
            Some(Fault::Drop) => {
                self.dead = true;
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            Some(Fault::Eio) => Err(injected_eio()),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(Fault::Truncate(n)) => {
                self.dead = true;
                let cap = n.min(buf.len());
                self.inner.write(&buf[..cap])
            }
            Some(Fault::SlowRead) => self.inner.write(&buf[..1.min(buf.len())]),
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        }
        self.inner.flush()
    }
}

/// A TCP forwarder that sits between a real client and a real server
/// and injects the plan's wire faults mid-connection.
///
/// Clients dial [`FaultProxy::addr`]; each accepted connection opens
/// its own upstream connection, and two pump threads forward bytes.
/// Armed faults pop one per forwarded chunk in their direction; the
/// seeded drop rate draws once per complete request line (newline) in
/// the `Tx` direction, so `drop_ppm` reads as "fraction of requests
/// that lose their connection". A drop closes both sides, which is
/// exactly what the retrying client must recover from.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral localhost port and forward to `upstream`
    /// under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let Ok(server) = TcpStream::connect(upstream) else {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        };
                        let _ = client.set_nodelay(true);
                        let _ = server.set_nodelay(true);
                        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                            continue;
                        };
                        let plan_tx = plan.clone();
                        let plan_rx = plan.clone();
                        std::thread::spawn(move || pump(client, server, Dir::Tx, plan_tx));
                        std::thread::spawn(move || pump(s2, c2, Dir::Rx, plan_rx));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(FaultProxy {
            addr,
            stop,
            join: Some(join),
        })
    }

    /// The address clients should dial instead of the server's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Close both halves of a proxied connection.
fn kill(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Forward `src` → `dst` until EOF, error, or an injected fault ends
/// the connection.
///
/// The chunk is read *first* and the fault queue consulted after, so a
/// fault armed while the pump is blocked waiting for traffic applies to
/// the very next chunk — which is what makes "arm, then issue one RPC"
/// deterministic from a test.
fn pump(mut src: TcpStream, mut dst: TcpStream, dir: Dir, plan: FaultPlan) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => {
                kill(&src, &dst);
                return;
            }
            Ok(n) => n,
        };
        match plan.take(dir) {
            Some(Fault::Drop) | Some(Fault::Eio) => {
                // On a real wire an I/O error and a hangup look the
                // same to the peers: the connection is gone and the
                // chunk with it.
                kill(&src, &dst);
                return;
            }
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Truncate(cap)) => {
                let forwarded = n.min(cap);
                if forwarded > 0 {
                    let _ = dst.write_all(&buf[..forwarded]);
                    let _ = dst.flush();
                }
                kill(&src, &dst);
                return;
            }
            Some(Fault::SlowRead) => {
                // Trickle this chunk one byte at a time.
                for b in &buf[..n] {
                    if dst.write_all(std::slice::from_ref(b)).is_err() {
                        kill(&src, &dst);
                        return;
                    }
                    let _ = dst.flush();
                    std::thread::sleep(Duration::from_millis(1));
                }
                continue;
            }
            None => {}
        }
        if dir == Dir::Tx {
            // One drop draw per complete request line, so the rate
            // reads per-request regardless of how TCP chunks them.
            for _ in buf[..n].iter().filter(|b| **b == b'\n') {
                if plan.draw_drop() {
                    kill(&src, &dst);
                    return;
                }
            }
        }
        if dst.write_all(&buf[..n]).is_err() {
            kill(&src, &dst);
            return;
        }
        let _ = dst.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_faults_fire_in_order_then_stream_is_normal() {
        let plan = FaultPlan::new(42);
        plan.arm(Dir::Rx, Fault::SlowRead);
        plan.arm(Dir::Rx, Fault::Eio);
        let data = b"hello world".to_vec();
        let mut s = FaultyStream::new(std::io::Cursor::new(data), plan.clone());
        let mut buf = [0u8; 8];
        // SlowRead: one byte.
        assert_eq!(s.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'h');
        // Eio: an error, stream still alive.
        assert!(s.read(&mut buf).is_err());
        assert!(!s.is_dead());
        // Queue empty: normal reads resume.
        assert_eq!(s.read(&mut buf).unwrap(), 8);
        assert_eq!(plan.wire_injected(), 2);
    }

    #[test]
    fn drop_and_truncate_kill_the_stream() {
        let plan = FaultPlan::new(7);
        plan.arm(Dir::Rx, Fault::Truncate(3));
        let mut s = FaultyStream::new(std::io::Cursor::new(b"abcdefgh".to_vec()), plan);
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 3);
        assert!(s.is_dead());
        assert_eq!(s.read(&mut buf).unwrap(), 0, "dead stream reads EOF");
        assert!(s.write(b"x").is_err(), "dead stream writes break");
    }

    #[test]
    fn write_faults_guard_the_tx_direction() {
        let plan = FaultPlan::new(7);
        plan.arm(Dir::Tx, Fault::Drop);
        let mut s = FaultyStream::new(std::io::Cursor::new(Vec::new()), plan);
        assert!(s.write(b"x").is_err());
        assert!(s.is_dead());
    }

    #[test]
    fn vfs_faults_pop_armed_then_draw_rate() {
        let plan = FaultPlan::with_rates(1234, 0, 500_000); // 50 % EIO
        plan.arm_vfs(Errno::ENOSPC);
        assert_eq!(plan.vfs_fault("write"), Some(Errno::ENOSPC));
        let hits = (0..1000).filter(|_| plan.vfs_fault("read").is_some()).count();
        assert!((300..700).contains(&hits), "rate draw wildly off: {hits}/1000");
        assert_eq!(plan.vfs_injected(), 1 + hits as u64);
    }

    #[test]
    fn armed_vfs_slow_pops_once_then_exhausts() {
        let plan = FaultPlan::new(3);
        plan.arm_vfs_slow(Duration::from_millis(7));
        assert_eq!(plan.vfs_slow("read"), Some(Duration::from_millis(7)));
        assert_eq!(plan.vfs_slow("read"), None, "armed delays are one-shot");
        assert_eq!(plan.vfs_injected(), 1);
        // Delays and errnos queue independently.
        plan.arm_vfs(Errno::EIO);
        assert_eq!(plan.vfs_slow("read"), None);
        assert_eq!(plan.vfs_fault("read"), Some(Errno::EIO));
    }

    #[test]
    fn same_seed_same_draws() {
        let a = FaultPlan::with_rates(99, 100_000, 0);
        let b = FaultPlan::with_rates(99, 100_000, 0);
        let da: Vec<bool> = (0..256).map(|_| a.draw_drop()).collect();
        let db: Vec<bool> = (0..256).map(|_| b.draw_drop()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|x| *x) && !da.iter().all(|x| *x));
    }

    #[test]
    fn proxy_forwards_and_injected_drop_cuts_the_connection() {
        // An echo server that upcases one line per connection.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let upstream = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                std::thread::spawn(move || loop {
                    use std::io::BufRead;
                    let mut r = std::io::BufReader::new(conn.try_clone().unwrap());
                    let mut line = String::new();
                    if r.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    let _ = conn.write_all(line.to_uppercase().as_bytes());
                });
            }
        });
        let plan = FaultPlan::new(5);
        let proxy = FaultProxy::spawn(upstream, plan.clone()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"hi\n").unwrap();
        let mut buf = [0u8; 3];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"HI\n");
        // Arm a drop on the reply path: the next request's reply never
        // arrives and the connection dies.
        plan.arm(Dir::Rx, Fault::Drop);
        c.write_all(b"again\n").unwrap();
        let n = c.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection should be cut");
        // A fresh connection through the same proxy works again.
        let mut c2 = TcpStream::connect(proxy.addr()).unwrap();
        c2.write_all(b"ok\n").unwrap();
        let mut buf = [0u8; 3];
        c2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"OK\n");
    }
}
