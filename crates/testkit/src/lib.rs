//! In-tree property-testing kit with a `proptest`-compatible surface.
//!
//! The build environment is fully offline, so the external `proptest`
//! crate cannot be fetched; the workspace aliases `proptest` to this
//! crate (see the root `Cargo.toml`), and the existing property tests
//! compile unchanged. The subset implemented is exactly what the test
//! suite uses: `Strategy` + `prop_map`, integer ranges, tuples,
//! `collection::vec`, `string::string_regex` (a generator for a small
//! regex dialect), `bits::u8::ANY`, `any::<T>()`, `prop_oneof!`,
//! and the `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! case seed instead — rerun with `IDBOX_PROP_SEED=<seed>` to
//! reproduce), and generation is a simple splitmix64 stream, fully
//! deterministic per test name.

use std::ops::Range;

pub mod fault;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a new stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test data.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in the half-open range.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Errors, config, runner
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum PropError {
    /// An assertion failed; the message carries the details.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl PropError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        PropError::Fail(msg.into())
    }
}

/// Runner configuration (`proptest!` reads it from
/// `#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// Drive one property: generate inputs and evaluate until `cfg.cases`
/// cases pass, a case fails, or too many cases are rejected.
pub fn run_cases(
    cfg: ProptestConfig,
    name: &str,
    body: impl Fn(&mut TestRng) -> Result<(), PropError>,
) {
    let base = match std::env::var("IDBOX_PROP_SEED") {
        Ok(v) => parse_seed(&v).expect("IDBOX_PROP_SEED must be decimal or 0x-hex"),
        Err(_) => {
            // Stable per test name so failures reproduce across runs.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01B3);
            }
            h
        }
    };
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    while accepted < cfg.cases {
        let seed = base.wrapping_add(attempts.wrapping_mul(0x2545_F491_4F6C_DD1D));
        attempts += 1;
        if attempts > cfg.cases as u64 * 64 + 1024 {
            panic!("property {name}: too many rejected cases ({attempts} attempts)");
        }
        let mut rng = TestRng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(PropError::Reject)) => {}
            Ok(Err(PropError::Fail(msg))) => {
                panic!(
                    "property {name} failed at case {accepted} \
                     (rerun with IDBOX_PROP_SEED={seed:#x}):\n{msg}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "property {name} panicked at case {accepted} \
                     (rerun with IDBOX_PROP_SEED={seed:#x})"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-process generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A `&str` is a regex-shaped string strategy, as in proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_gen::parse(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"));
        regex_gen::generate(&ast, rng)
    }
}

/// A boxed generator arm of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// One of several alternative strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Build from boxed generator arms.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one strategy into an arm.
    pub fn arm<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / bits
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<T>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for primitive `T`.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty),+) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )+};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}
impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Bit-pattern strategies (`proptest::bits::u8::ANY`).
pub mod bits {
    /// Strategies over `u8` bit patterns.
    #[allow(non_snake_case)]
    pub mod u8 {
        use crate::{Strategy, TestRng};

        /// Strategy yielding any `u8` bit pattern.
        #[derive(Clone, Copy)]
        pub struct AnyBits;

        impl Strategy for AnyBits {
            type Value = u8;
            fn generate(&self, rng: &mut TestRng) -> u8 {
                rng.next_u64() as u8
            }
        }

        /// Any `u8`, uniformly.
        pub const ANY: AnyBits = AnyBits;
    }
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Accepted size specifications for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generate vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.in_range(self.size.lo as u64, self.size.hi as u64 + 1) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// string (regex generation)
// ---------------------------------------------------------------------------

/// String strategies (`proptest::string::string_regex`).
pub mod string {
    use crate::{regex_gen, Strategy, TestRng};

    /// Strategy yielding strings matching a regex subset.
    pub struct RegexStrategy {
        ast: regex_gen::Node,
    }

    /// Compile `pattern` into a generator. Supports literals, classes
    /// (`[A-Za-z0-9._-]`), escapes (`\s`, `\d`, `\w`, `\PC`), `.`,
    /// groups, alternation, and `*`/`+`/`?`/`{m,n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        Ok(RegexStrategy {
            ast: regex_gen::parse(pattern)?,
        })
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            regex_gen::generate(&self.ast, rng)
        }
    }
}

mod regex_gen {
    use crate::TestRng;

    /// Inclusive codepoint ranges a class can draw from.
    type Ranges = Vec<(u32, u32)>;

    pub enum Atom {
        Chars(Ranges),
        Group(Box<Node>),
    }

    pub struct Piece {
        pub atom: Atom,
        pub min: u32,
        pub max: u32,
    }

    /// Alternation of sequences.
    pub struct Node {
        pub branches: Vec<Vec<Piece>>,
    }

    /// How many repetitions an open-ended quantifier may produce.
    const OPEN_REP_SPAN: u32 = 7;

    fn printable() -> Ranges {
        // ASCII printable plus a slice of Latin-1 and kana so UTF-8
        // multibyte handling gets exercised.
        vec![(0x20, 0x7E), (0xA1, 0x1FF), (0x3041, 0x30FE)]
    }

    fn whitespace() -> Ranges {
        vec![(0x09, 0x0A), (0x0D, 0x0D), (0x20, 0x20)]
    }

    pub fn parse(pattern: &str) -> Result<Node, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let node = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at {}", chars[pos], pos));
        }
        Ok(node)
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut branches = vec![parse_seq(chars, pos)?];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(parse_seq(chars, pos)?);
        }
        Ok(Node { branches })
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Vec<Piece>, String> {
        let mut pieces = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos)?;
            let (mut min, mut max) = (1, 1);
            // Stacked quantifiers (e.g. `.*{0,200}`): the last one wins.
            while *pos < chars.len() {
                match chars[*pos] {
                    '*' => {
                        *pos += 1;
                        (min, max) = (0, OPEN_REP_SPAN);
                    }
                    '+' => {
                        *pos += 1;
                        (min, max) = (1, 1 + OPEN_REP_SPAN);
                    }
                    '?' => {
                        *pos += 1;
                        (min, max) = (0, 1);
                    }
                    '{' => {
                        *pos += 1;
                        (min, max) = parse_braces(chars, pos)?;
                    }
                    _ => break,
                }
            }
            pieces.push(Piece { atom, min, max });
        }
        Ok(pieces)
    }

    fn parse_braces(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
        let read_num = |pos: &mut usize| -> Option<u32> {
            let start = *pos;
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == start {
                return None;
            }
            chars[start..*pos].iter().collect::<String>().parse().ok()
        };
        let min = read_num(pos).ok_or("expected number in {…}")?;
        let max = if *pos < chars.len() && chars[*pos] == ',' {
            *pos += 1;
            match read_num(pos) {
                Some(n) => n,
                None => min + OPEN_REP_SPAN, // `{m,}`
            }
        } else {
            min
        };
        if *pos >= chars.len() || chars[*pos] != '}' {
            return Err("unterminated {…} quantifier".into());
        }
        *pos += 1;
        if min > max {
            return Err("inverted {m,n} quantifier".into());
        }
        Ok((min, max))
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
        match chars[*pos] {
            '[' => {
                *pos += 1;
                parse_class(chars, pos)
            }
            '(' => {
                *pos += 1;
                // Tolerate the non-capturing marker.
                if chars[*pos..].starts_with(&['?', ':']) {
                    *pos += 2;
                }
                let inner = parse_alt(chars, pos)?;
                if *pos >= chars.len() || chars[*pos] != ')' {
                    return Err("unterminated group".into());
                }
                *pos += 1;
                Ok(Atom::Group(Box::new(inner)))
            }
            '\\' => {
                *pos += 1;
                let set = parse_escape(chars, pos)?;
                Ok(Atom::Chars(set))
            }
            '.' => {
                *pos += 1;
                Ok(Atom::Chars(printable()))
            }
            c => {
                *pos += 1;
                Ok(Atom::Chars(vec![(c as u32, c as u32)]))
            }
        }
    }

    fn parse_escape(chars: &[char], pos: &mut usize) -> Result<Ranges, String> {
        if *pos >= chars.len() {
            return Err("dangling backslash".into());
        }
        let c = chars[*pos];
        *pos += 1;
        Ok(match c {
            's' => whitespace(),
            'S' => vec![(0x21, 0x7E)],
            'd' => vec![(0x30, 0x39)],
            'w' => vec![(0x30, 0x39), (0x41, 0x5A), (0x5F, 0x5F), (0x61, 0x7A)],
            'n' => vec![(0x0A, 0x0A)],
            't' => vec![(0x09, 0x09)],
            'r' => vec![(0x0D, 0x0D)],
            'P' | 'p' => {
                // `\PC` (not-control) is the only category the tests
                // use; accept the `\P{C}` spelling too.
                let braced = *pos < chars.len() && chars[*pos] == '{';
                if braced {
                    *pos += 1;
                }
                if *pos >= chars.len() {
                    return Err("dangling \\P".into());
                }
                let cat = chars[*pos];
                *pos += 1;
                if braced {
                    if *pos >= chars.len() || chars[*pos] != '}' {
                        return Err("unterminated \\P{…}".into());
                    }
                    *pos += 1;
                }
                if c == 'P' && cat == 'C' {
                    printable()
                } else {
                    return Err(format!("unsupported category \\{c}{cat}"));
                }
            }
            other => vec![(other as u32, other as u32)],
        })
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Atom, String> {
        let mut negated = false;
        if *pos < chars.len() && chars[*pos] == '^' {
            negated = true;
            *pos += 1;
        }
        let mut ranges: Ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo_set = if chars[*pos] == '\\' {
                *pos += 1;
                parse_escape(chars, pos)?
            } else {
                let c = chars[*pos];
                *pos += 1;
                vec![(c as u32, c as u32)]
            };
            // A `-` between two single chars forms a range; elsewhere
            // it is a literal.
            let single = lo_set.len() == 1 && lo_set[0].0 == lo_set[0].1;
            if single
                && *pos + 1 < chars.len()
                && chars[*pos] == '-'
                && chars[*pos + 1] != ']'
            {
                *pos += 1;
                let hi = if chars[*pos] == '\\' {
                    *pos += 1;
                    let set = parse_escape(chars, pos)?;
                    if set.len() != 1 || set[0].0 != set[0].1 {
                        return Err("bad class range endpoint".into());
                    }
                    set[0].0
                } else {
                    let c = chars[*pos];
                    *pos += 1;
                    c as u32
                };
                let lo = lo_set[0].0;
                if lo > hi {
                    return Err("inverted class range".into());
                }
                ranges.push((lo, hi));
            } else {
                ranges.extend(lo_set);
            }
        }
        if *pos >= chars.len() {
            return Err("unterminated character class".into());
        }
        *pos += 1; // consume ']'
        if negated {
            ranges = complement(&ranges);
        }
        if ranges.is_empty() {
            return Err("empty character class".into());
        }
        Ok(Atom::Chars(ranges))
    }

    /// Complement within the printable universe.
    fn complement(ranges: &Ranges) -> Ranges {
        let mut out = Vec::new();
        for &(ulo, uhi) in &printable() {
            let mut cur = ulo;
            let mut sorted: Vec<_> = ranges
                .iter()
                .filter(|&&(lo, hi)| hi >= ulo && lo <= uhi)
                .collect();
            sorted.sort();
            for &&(lo, hi) in &sorted {
                if lo.max(ulo) > cur {
                    out.push((cur, lo.max(ulo) - 1));
                }
                cur = cur.max(hi.saturating_add(1));
            }
            if cur <= uhi {
                out.push((cur, uhi));
            }
        }
        out
    }

    pub fn generate(node: &Node, rng: &mut TestRng) -> String {
        let mut out = String::new();
        gen_node(node, rng, &mut out);
        out
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        let branch = &node.branches[rng.below(node.branches.len() as u64) as usize];
        for piece in branch {
            let n = rng.in_range(piece.min as u64, piece.max as u64 + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Group(inner) => gen_node(inner, rng, out),
                    Atom::Chars(ranges) => out.push(pick_char(ranges, rng)),
                }
            }
        }
    }

    fn pick_char(ranges: &Ranges, rng: &mut TestRng) -> char {
        let total: u64 = ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).sum();
        let mut k = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi - lo + 1) as u64;
            if k < span {
                return char::from_u32(lo + k as u32).unwrap_or('?');
            }
            k -= span;
        }
        unreachable!("pick_char ran past its ranges")
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$attr:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])+
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Choose uniformly between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($arm)),+])
    };
}

/// Assert within a property body; failures report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!(),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+),
            )));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert_eq!({}, {}) failed at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), __a, __b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), format!($($fmt)+), __a, __b,
            )));
        }
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if *__a == *__b {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert_ne!({}, {}) failed at {}:{}\n  both: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), __a,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if *__a == *__b {
            return ::core::result::Result::Err($crate::PropError::fail(format!(
                "prop_assert_ne! failed at {}:{}: {}\n  both: {:?}",
                file!(), line!(), format!($($fmt)+), __a,
            )));
        }
    }};
}

/// Discard the current case when its inputs don't fit the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropError::Reject);
        }
    };
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, PropError, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let s = (-5i32..7).generate(&mut r);
            assert!((-5..7).contains(&s));
        }
    }

    #[test]
    fn regex_class_and_quantifier() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[A-Za-z0-9/=:@.*?_-]{1,40}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()
                || "/=:@.*?_-".contains(c)));
        }
    }

    #[test]
    fn regex_literals_and_alternation() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "/O=[A-Za-z]{1,12}/CN=[A-Za-z0-9 ._-]{1,20}".generate(&mut r);
            assert!(s.starts_with("/O="), "{s}");
            assert!(s.contains("/CN="), "{s}");
            let t = "[%\\s]|[a-z]".generate(&mut r);
            let c = t.chars().next().unwrap();
            assert!(c == '%' || c.is_whitespace() || c.is_ascii_lowercase());
        }
    }

    #[test]
    fn regex_stacked_quantifier_caps_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = ".*{0,50}".generate(&mut r);
            assert!(s.chars().count() <= 50);
        }
    }

    #[test]
    fn vec_and_oneof_strategies() {
        let mut r = rng();
        let v = collection::vec(any::<u8>(), 0..64).generate(&mut r);
        assert!(v.len() < 64);
        let exact = collection::vec(any::<u64>(), 6).generate(&mut r);
        assert_eq!(exact.len(), 6);
        let u = prop_oneof![Just(1u8), Just(2u8), (5u8..9).prop_map(|x| x)];
        for _ in 0..100 {
            let x = u.generate(&mut r);
            assert!(x == 1 || x == 2 || (5..9).contains(&x));
        }
    }

    #[test]
    fn runner_reports_failures() {
        let result = std::panic::catch_unwind(|| {
            run_cases(ProptestConfig::with_cases(8), "always_fails", |_| {
                Err(PropError::fail("nope"))
            });
        });
        assert!(result.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u32..100, ys in collection::vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.iter().map(|_| 1usize).sum::<usize>());
            prop_assert_ne!(x, 100);
        }
    }
}
