//! The trap cost model.
//!
//! A real `ptrace`-based interposition agent pays for every trapped system
//! call with **at least six context switches** (application → kernel →
//! supervisor and back, twice: once at syscall entry and once when the
//! nullified `getpid()` returns), plus word-granular `PTRACE_PEEKDATA` /
//! `PTRACE_POKEDATA` traffic and an extra data copy through the I/O channel
//! for bulk transfers (paper, Section 5 and Figure 4).
//!
//! Our substrate is a simulated kernel reached by a function call, so the
//! switches do not happen by themselves. Instead the supervisor *performs*
//! them: each simulated context switch saves and restores a register file
//! and walks a cache-footprint buffer, doing real, unoptimizable work whose
//! size is set by the [`CostModel`]. `CostModel::calibrated` chooses the
//! footprint so a boxed `getpid` costs roughly an order of magnitude more
//! than a direct one, reproducing Figure 5(a)'s headline ratio; every other
//! number in the evaluation then *emerges* from the mechanism.

use std::hint::black_box;

/// Parameters of the simulated trap cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Bytes of the cache-footprint buffer touched per context switch.
    /// Models the cache and TLB disturbance of a mode switch plus
    /// scheduler pass.
    pub switch_footprint_bytes: usize,
    /// Full passes over the footprint buffer per context switch.
    pub switch_passes: u32,
    /// Number of context switches charged per trap round trip. The paper
    /// counts at least six (Figure 4a: steps 1-2, 2-3, 4-5, 5-6, 6-7 plus
    /// the kernel's own entry/exit).
    pub switches_per_trap: u32,
    /// When false, no artificial switch work is done (the mechanism --
    /// peek/poke, decode, channel copies -- still runs). Used by
    /// ablation benches.
    pub charge_switches: bool,
}

impl CostModel {
    /// The calibrated default: chosen so that on a contemporary x86-64
    /// host a boxed `getpid` lands near 10x a direct one, matching the
    /// order-of-magnitude slowdown of Figure 5(a). See
    /// `idbox-interpose::calibrate` for the measurement harness.
    pub fn calibrated() -> Self {
        CostModel {
            switch_footprint_bytes: 4096,
            switch_passes: 1,
            switches_per_trap: 6,
            charge_switches: true,
        }
    }

    /// A model that charges no context-switch work at all. The trap
    /// machinery (decode, peek/poke, nullify, channel) still executes;
    /// this isolates the mechanism cost from the switch cost.
    pub fn free_switches() -> Self {
        CostModel {
            charge_switches: false,
            ..CostModel::calibrated()
        }
    }

    /// Scale the per-switch footprint by `factor` (used by calibration
    /// sweeps).
    pub fn scaled(self, factor: f64) -> Self {
        let bytes = (self.switch_footprint_bytes as f64 * factor).max(64.0) as usize;
        CostModel {
            switch_footprint_bytes: bytes,
            ..self
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

/// Executes simulated context switches and keeps cost counters.
///
/// One engine lives inside each supervisor. The footprint buffer is owned
/// here so repeated switches keep evicting the same lines, the way repeated
/// real mode switches keep flushing the same working set.
#[derive(Debug)]
pub struct SwitchEngine {
    model: CostModel,
    footprint: Vec<u8>,
    seed: u64,
    report: TrapCostReport,
}

impl SwitchEngine {
    /// Build an engine for the given model.
    pub fn new(model: CostModel) -> Self {
        SwitchEngine {
            footprint: vec![0xA5; model.switch_footprint_bytes.max(64)],
            model,
            seed: 0x9E37_79B9_7F4A_7C15,
            report: TrapCostReport::default(),
        }
    }

    /// The model in force.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Perform one simulated context switch: register-file save/restore
    /// plus a cache-disturbing walk over the footprint buffer.
    #[inline]
    pub fn context_switch(&mut self) {
        self.report.switches += 1;
        if !self.model.charge_switches {
            return;
        }
        let mut acc = self.seed;
        for _ in 0..self.model.switch_passes {
            // Stride of one cache line: touch every line in the footprint.
            let mut i = 0;
            while i < self.footprint.len() {
                acc = acc
                    .rotate_left(7)
                    .wrapping_add(self.footprint[i] as u64)
                    .wrapping_mul(0x100_0000_01B3);
                self.footprint[i] = acc as u8;
                i += 64;
            }
        }
        self.seed = black_box(acc);
    }

    /// Charge the switches for one full trap round trip.
    #[inline]
    pub fn trap_round_trip(&mut self) {
        self.report.traps += 1;
        for _ in 0..self.model.switches_per_trap {
            self.context_switch();
        }
    }

    /// Record one peeked word.
    #[inline]
    pub fn count_peek(&mut self) {
        self.report.peeks += 1;
    }

    /// Record `n` peeked words at once — a ranged transfer charged at
    /// its words-equivalent cost, so bulk reads keep the same Figure 4
    /// accounting as the word loop they replace.
    #[inline]
    pub fn count_peeks(&mut self, n: u64) {
        self.report.peeks += n;
    }

    /// Record one poked word.
    #[inline]
    pub fn count_poke(&mut self) {
        self.report.pokes += 1;
    }

    /// Record `n` poked words at once (ranged transfer, words-equivalent).
    #[inline]
    pub fn count_pokes(&mut self, n: u64) {
        self.report.pokes += n;
    }

    /// Record bytes moved through the I/O channel.
    #[inline]
    pub fn count_channel(&mut self, bytes: u64) {
        self.report.channel_bytes += bytes;
    }

    /// Snapshot the accumulated cost counters.
    pub fn report(&self) -> TrapCostReport {
        self.report
    }

    /// Reset the cost counters (the footprint state is kept warm).
    pub fn reset_report(&mut self) {
        self.report = TrapCostReport::default();
    }
}

/// Counters describing the work an interposed run performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrapCostReport {
    /// Trap round trips (one per interposed syscall).
    pub traps: u64,
    /// Simulated context switches.
    pub switches: u64,
    /// Words read from the tracee via peek.
    pub peeks: u64,
    /// Words written to the tracee via poke.
    pub pokes: u64,
    /// Bytes moved through the I/O channel (the extra copy of Figure 4b).
    pub channel_bytes: u64,
}

impl TrapCostReport {
    /// Sum of two reports.
    pub fn merged(self, other: TrapCostReport) -> TrapCostReport {
        TrapCostReport {
            traps: self.traps + other.traps,
            switches: self.switches + other.switches,
            peeks: self.peeks + other.peeks,
            pokes: self.pokes + other.pokes,
            channel_bytes: self.channel_bytes + other.channel_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_charges_six_switches() {
        let mut e = SwitchEngine::new(CostModel::calibrated());
        e.trap_round_trip();
        let r = e.report();
        assert_eq!(r.traps, 1);
        assert_eq!(r.switches, 6);
    }

    #[test]
    fn free_switches_still_counts() {
        let mut e = SwitchEngine::new(CostModel::free_switches());
        e.trap_round_trip();
        assert_eq!(e.report().switches, 6);
    }

    #[test]
    fn counters_accumulate() {
        let mut e = SwitchEngine::new(CostModel::calibrated());
        e.count_peek();
        e.count_peek();
        e.count_poke();
        e.count_channel(8192);
        let r = e.report();
        assert_eq!(r.peeks, 2);
        assert_eq!(r.pokes, 1);
        assert_eq!(r.channel_bytes, 8192);
    }

    #[test]
    fn reset_clears_counters() {
        let mut e = SwitchEngine::new(CostModel::calibrated());
        e.trap_round_trip();
        e.reset_report();
        assert_eq!(e.report(), TrapCostReport::default());
    }

    #[test]
    fn merged_adds_fields() {
        let a = TrapCostReport {
            traps: 1,
            switches: 6,
            peeks: 2,
            pokes: 3,
            channel_bytes: 10,
        };
        let b = a;
        let m = a.merged(b);
        assert_eq!(m.traps, 2);
        assert_eq!(m.switches, 12);
        assert_eq!(m.channel_bytes, 20);
    }

    #[test]
    fn scaled_changes_footprint() {
        let m = CostModel::calibrated().scaled(2.0);
        assert_eq!(
            m.switch_footprint_bytes,
            CostModel::calibrated().switch_footprint_bytes * 2
        );
        // Never collapses below one cache line.
        let tiny = CostModel::calibrated().scaled(1e-9);
        assert!(tiny.switch_footprint_bytes >= 64);
    }

    #[test]
    fn switch_does_real_work() {
        // The footprint buffer must actually change, or the optimizer could
        // delete the walk.
        let mut e = SwitchEngine::new(CostModel::calibrated());
        let before = e.footprint.clone();
        e.context_switch();
        assert_ne!(before, e.footprint);
    }
}
