//! The error space of the simulated kernel.
//!
//! Every syscall either succeeds or fails with a Unix-style error number.
//! Identity boxing relies on being able to inject *any* return value into a
//! trapped call — in particular "permission denied" — so denial is always an
//! ordinary [`Errno`], never a killed process (Garfinkel's fifth pitfall).

use std::fmt;

/// Unix-style error numbers understood by the simulated kernel.
///
/// The numeric values mirror Linux on x86-64 so that raw register-level
/// results in the interposer look familiar in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// No child processes.
    ECHILD = 10,
    /// Try again.
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address (guest pointer outside the tracee's memory).
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link.
    EXDEV = 18,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files.
    EMFILE = 24,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Read-only file system.
    EROFS = 30,
    /// Too many links.
    EMLINK = 31,
    /// Broken pipe.
    EPIPE = 32,
    /// Result out of range.
    ERANGE = 34,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// Function not implemented.
    ENOSYS = 38,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many levels of symbolic links.
    ELOOP = 40,
    /// Protocol error (malformed Chirp exchange).
    EPROTO = 71,
    /// Connection refused.
    ECONNREFUSED = 111,
}

impl Errno {
    /// The raw (positive) error number.
    pub fn code(self) -> i32 {
        self as i32
    }

    /// Encode as a raw syscall return value (negated, like the Linux ABI).
    pub fn as_ret(self) -> i64 {
        -(self as i32 as i64)
    }

    /// Decode a raw syscall return value; `None` when the value encodes
    /// success or an error number we do not model.
    pub fn from_ret(ret: i64) -> Option<Errno> {
        if ret >= 0 {
            return None;
        }
        Errno::from_code((-ret) as i32)
    }

    /// Decode a raw positive error number.
    pub fn from_code(code: i32) -> Option<Errno> {
        use Errno::*;
        Some(match code {
            1 => EPERM,
            2 => ENOENT,
            3 => ESRCH,
            4 => EINTR,
            5 => EIO,
            9 => EBADF,
            10 => ECHILD,
            11 => EAGAIN,
            12 => ENOMEM,
            13 => EACCES,
            14 => EFAULT,
            16 => EBUSY,
            17 => EEXIST,
            18 => EXDEV,
            20 => ENOTDIR,
            21 => EISDIR,
            22 => EINVAL,
            24 => EMFILE,
            27 => EFBIG,
            28 => ENOSPC,
            29 => ESPIPE,
            30 => EROFS,
            31 => EMLINK,
            32 => EPIPE,
            34 => ERANGE,
            36 => ENAMETOOLONG,
            38 => ENOSYS,
            39 => ENOTEMPTY,
            40 => ELOOP,
            71 => EPROTO,
            111 => ECONNREFUSED,
            _ => return None,
        })
    }

    /// A short human-readable description, like `strerror`.
    pub fn describe(self) -> &'static str {
        use Errno::*;
        match self {
            EPERM => "operation not permitted",
            ENOENT => "no such file or directory",
            ESRCH => "no such process",
            EINTR => "interrupted system call",
            EIO => "input/output error",
            EBADF => "bad file descriptor",
            ECHILD => "no child processes",
            EAGAIN => "resource temporarily unavailable",
            ENOMEM => "cannot allocate memory",
            EACCES => "permission denied",
            EFAULT => "bad address",
            EBUSY => "device or resource busy",
            EEXIST => "file exists",
            EXDEV => "invalid cross-device link",
            ENOTDIR => "not a directory",
            EISDIR => "is a directory",
            EINVAL => "invalid argument",
            EMFILE => "too many open files",
            EFBIG => "file too large",
            ENOSPC => "no space left on device",
            ESPIPE => "illegal seek",
            EROFS => "read-only file system",
            EMLINK => "too many links",
            EPIPE => "broken pipe",
            ERANGE => "result out of range",
            ENAMETOOLONG => "file name too long",
            ENOSYS => "function not implemented",
            ENOTEMPTY => "directory not empty",
            ELOOP => "too many levels of symbolic links",
            EPROTO => "protocol error",
            ECONNREFUSED => "connection refused",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} ({})", self, self.describe())
    }
}

impl std::error::Error for Errno {}

/// Result type used by every simulated syscall.
pub type SysResult<T> = Result<T, Errno>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ret_roundtrip() {
        for e in [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::EACCES,
            Errno::ELOOP,
            Errno::ENOTEMPTY,
            Errno::ECONNREFUSED,
        ] {
            assert_eq!(Errno::from_ret(e.as_ret()), Some(e));
            assert_eq!(Errno::from_code(e.code()), Some(e));
        }
    }

    #[test]
    fn success_is_not_an_error() {
        assert_eq!(Errno::from_ret(0), None);
        assert_eq!(Errno::from_ret(42), None);
    }

    #[test]
    fn unknown_code_is_none() {
        assert_eq!(Errno::from_code(9999), None);
        assert_eq!(Errno::from_ret(-9999), None);
    }

    #[test]
    fn linux_numbers() {
        assert_eq!(Errno::EACCES.code(), 13);
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EACCES.as_ret(), -13);
    }

    #[test]
    fn display_mentions_description() {
        let s = Errno::EACCES.to_string();
        assert!(s.contains("EACCES"));
        assert!(s.contains("permission denied"));
    }
}
