//! Free-form global identities.

use std::fmt;
use std::sync::Arc;

/// A free-form, globally meaningful identity string.
///
/// An identity box attaches one of these to every process and resource a
/// visiting user employs. The supervising user may pick *absolutely any*
/// name — `MyFriend`, `JohnQPublic`, `Anonymous429`, or a principal name
/// produced by an authentication exchange such as
/// `globus:/O=UnivNowhere/CN=Fred`. The string is opaque to the kernel; only
/// ACL subject patterns give it meaning.
///
/// `Identity` is cheaply cloneable (`Arc<str>` inside) because it is copied
/// into every process table entry and consulted on every privilege check.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Identity(Arc<str>);

impl Identity {
    /// Create an identity from any string.
    pub fn new(name: impl AsRef<str>) -> Self {
        Identity(Arc::from(name.as_ref()))
    }

    /// The identity used for ACL-less directories: the visiting user is
    /// treated as the untrusted Unix account `nobody`.
    pub fn nobody() -> Self {
        Identity::new(crate::NOBODY)
    }

    /// View the identity as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this is the `nobody` identity.
    pub fn is_nobody(&self) -> bool {
        self.as_str() == crate::NOBODY
    }

    /// A sanitized form usable as a path component for the visitor's
    /// synthesized home directory: every character outside
    /// `[A-Za-z0-9._-]` is replaced with `_`.
    pub fn home_component(&self) -> String {
        let mut out = String::with_capacity(self.0.len());
        for c in self.0.chars() {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                out.push(c);
            } else {
                out.push('_');
            }
        }
        if out.is_empty() {
            out.push('_');
        }
        out
    }
}

impl fmt::Display for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Identity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Identity({})", &self.0)
    }
}

impl From<&str> for Identity {
    fn from(s: &str) -> Self {
        Identity::new(s)
    }
}

impl From<String> for Identity {
    fn from(s: String) -> Self {
        Identity::new(s)
    }
}

impl AsRef<str> for Identity {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let id = Identity::new("globus:/O=UnivNowhere/CN=Fred");
        assert_eq!(id.as_str(), "globus:/O=UnivNowhere/CN=Fred");
        assert_eq!(id.to_string(), "globus:/O=UnivNowhere/CN=Fred");
    }

    #[test]
    fn nobody_is_nobody() {
        assert!(Identity::nobody().is_nobody());
        assert!(!Identity::new("fred").is_nobody());
    }

    #[test]
    fn clone_is_equal() {
        let a = Identity::new("MyFriend");
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn home_component_sanitizes() {
        let id = Identity::new("globus:/O=Univ Nowhere/CN=Fred");
        let h = id.home_component();
        assert!(!h.contains('/'));
        assert!(!h.contains(':'));
        assert!(!h.contains(' '));
        assert!(h.contains("Fred"));
    }

    #[test]
    fn home_component_empty_identity() {
        assert_eq!(Identity::new("").home_component(), "_");
    }

    #[test]
    fn any_name_is_valid() {
        // The paper: "MyFriend, JohnQPublic, and Anonymous429 are all valid".
        for name in ["MyFriend", "JohnQPublic", "Anonymous429", "日本語", "a b c"] {
            let id = Identity::new(name);
            assert_eq!(id.as_str(), name);
        }
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Identity::new("a") < Identity::new("b"));
    }
}
