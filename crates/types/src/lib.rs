//! Common types for the identity-boxing system.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace: free-form global [`Identity`] strings, authenticated
//! [`Principal`] names (`method:name`), the simulated-kernel error space
//! [`Errno`], and the [`CostModel`] that makes the user-level interposition
//! agent pay a realistic, calibrated price per trapped system call.
//!
//! The paper's central observation is that a *high-level name* — an
//! arbitrary string such as `globus:/O=UnivNowhere/CN=Fred` — can replace
//! the integer UID as the subject of every privilege check. Everything in
//! this crate is therefore string-first: identities are opaque,
//! reference-counted strings, never integers.

pub mod cost;
pub mod errno;
pub mod identity;
pub mod principal;

pub use cost::{CostModel, SwitchEngine, TrapCostReport};
pub use errno::{Errno, SysResult};
pub use identity::Identity;
pub use principal::{AuthMethod, Principal};

/// The canonical name given to a visiting user in a directory that carries
/// no ACL: the box falls back to Unix permission checks *as if* the visitor
/// were this untrusted account (paper, Section 3).
pub const NOBODY: &str = "nobody";

/// Default name of the per-directory access control file.
pub const ACL_FILE_NAME: &str = ".__acl";
