//! Authenticated principal names.
//!
//! A Chirp server knows a connected client by a *principal name*
//! constructed from the negotiated authentication method and the proven
//! identity, e.g. `globus:/O=UnivNowhere/CN=Fred`,
//! `kerberos:fred@nowhere.edu`, or `hostname:laptop.cs.nowhere.edu`
//! (paper, Section 4). A principal converts losslessly into the
//! [`Identity`] attached to the visitor's identity box.

use crate::Identity;
use std::fmt;
use std::str::FromStr;

/// Authentication methods supported by the Chirp negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AuthMethod {
    /// Simulated GSI public-key certificates (subject names like
    /// `/O=UnivNowhere/CN=Fred`).
    Globus,
    /// Simulated Kerberos tickets (`user@REALM` names).
    Kerberos,
    /// Reverse-lookup hostname identification.
    Hostname,
    /// The local Unix account name, proven via a filesystem challenge.
    Unix,
}

impl AuthMethod {
    /// The lowercase wire name used in negotiation and principal names.
    pub fn wire_name(self) -> &'static str {
        match self {
            AuthMethod::Globus => "globus",
            AuthMethod::Kerberos => "kerberos",
            AuthMethod::Hostname => "hostname",
            AuthMethod::Unix => "unix",
        }
    }

    /// All methods, in default negotiation preference order (strongest
    /// first).
    pub fn all() -> [AuthMethod; 4] {
        [
            AuthMethod::Globus,
            AuthMethod::Kerberos,
            AuthMethod::Hostname,
            AuthMethod::Unix,
        ]
    }
}

impl FromStr for AuthMethod {
    type Err = UnknownAuthMethod;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "globus" => Ok(AuthMethod::Globus),
            "kerberos" => Ok(AuthMethod::Kerberos),
            "hostname" => Ok(AuthMethod::Hostname),
            "unix" => Ok(AuthMethod::Unix),
            _ => Err(UnknownAuthMethod(s.to_string())),
        }
    }
}

impl fmt::Display for AuthMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Error returned when parsing an unrecognized method name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAuthMethod(pub String);

impl fmt::Display for UnknownAuthMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown authentication method: {:?}", self.0)
    }
}

impl std::error::Error for UnknownAuthMethod {}

/// An authenticated principal: the pair of *how* a user proved themselves
/// and *who* they proved to be.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Principal {
    /// The negotiated authentication method.
    pub method: AuthMethod,
    /// The proven subject name (certificate subject, Kerberos principal,
    /// hostname, or Unix account).
    pub name: String,
}

impl Principal {
    /// Build a principal from a method and a proven name.
    pub fn new(method: AuthMethod, name: impl Into<String>) -> Self {
        Principal {
            method,
            name: name.into(),
        }
    }

    /// The full `method:name` string used in ACLs and identity boxes.
    pub fn qualified(&self) -> String {
        format!("{}:{}", self.method.wire_name(), self.name)
    }

    /// Convert into the identity attached to the visitor's box.
    pub fn to_identity(&self) -> Identity {
        Identity::new(self.qualified())
    }

    /// Parse a `method:name` string.
    pub fn parse(s: &str) -> Result<Principal, UnknownAuthMethod> {
        let (method, name) = s
            .split_once(':')
            .ok_or_else(|| UnknownAuthMethod(s.to_string()))?;
        Ok(Principal::new(method.parse::<AuthMethod>()?, name))
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.method.wire_name(), self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_names_match_paper() {
        let p = Principal::new(AuthMethod::Globus, "/O=UnivNowhere/CN=Fred");
        assert_eq!(p.qualified(), "globus:/O=UnivNowhere/CN=Fred");
        let p = Principal::new(AuthMethod::Kerberos, "fred@nowhere.edu");
        assert_eq!(p.qualified(), "kerberos:fred@nowhere.edu");
        let p = Principal::new(AuthMethod::Hostname, "laptop.cs.nowhere.edu");
        assert_eq!(p.qualified(), "hostname:laptop.cs.nowhere.edu");
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "globus:/O=UnivNowhere/CN=Fred",
            "kerberos:fred@nowhere.edu",
            "hostname:laptop.cs.nowhere.edu",
            "unix:dthain",
        ] {
            let p = Principal::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_preserves_colons_in_name() {
        // Only the first colon separates method from name.
        let p = Principal::parse("globus:/O=A/CN=x:y").unwrap();
        assert_eq!(p.name, "/O=A/CN=x:y");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Principal::parse("no-colon-here").is_err());
        assert!(Principal::parse("ftp:someone").is_err());
    }

    #[test]
    fn to_identity_is_qualified() {
        let p = Principal::new(AuthMethod::Unix, "dthain");
        assert_eq!(p.to_identity().as_str(), "unix:dthain");
    }

    #[test]
    fn method_wire_names_parse_back() {
        for m in AuthMethod::all() {
            assert_eq!(m.wire_name().parse::<AuthMethod>().unwrap(), m);
        }
    }
}
