//! Chunked, `Arc`-backed file contents: the zero-copy data plane's
//! foundation.
//!
//! A regular file's bytes are held as a sequence of immutable,
//! reference-counted chunks ([`Arc<[u8]>`]) of a fixed nominal size
//! (the last chunk may be shorter; every chunk's stored length is
//! exact). Readers that want the bytes wholesale — the kernel's
//! extent read path, the Chirp server's `get` — receive cheap `Arc`
//! clones wrapped in [`ByteExtent`]s instead of a copy, so a 64 MB
//! read costs a handful of pointer bumps under the shard lock rather
//! than a 64 MB memcpy.
//!
//! Writes are copy-on-write per chunk: a chunk still uniquely owned by
//! the file is patched in place (`Arc::get_mut`), while a chunk shared
//! with an in-flight reader is rebuilt, leaving the reader's snapshot
//! untouched. Readers therefore observe a consistent point-in-time
//! view of every extent they hold, no matter what writers do next —
//! the property the streaming reply path relies on while a reply
//! drains under backpressure.

use std::sync::Arc;

/// Default nominal chunk size: 64 KiB, matching the client's
/// `write_file_mode` streaming granularity so sequential puts build
/// exactly one chunk per wire write.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Bounds on configurable chunk sizes (see `IDBOX_VFS_CHUNK_KIB`).
pub const MIN_CHUNK_SIZE: usize = 512;
/// Upper bound on configurable chunk sizes.
pub const MAX_CHUNK_SIZE: usize = 16 * 1024 * 1024;

/// One borrowed run of file bytes: a reference-counted chunk plus the
/// half-open `[start, end)` window of it that belongs to the read.
///
/// Cloning is O(1) (an `Arc` bump); the bytes themselves are immutable
/// for the extent's lifetime even if the file is concurrently written
/// (writers copy-on-write shared chunks instead of mutating them).
#[derive(Debug, Clone)]
pub struct ByteExtent {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl ByteExtent {
    /// An extent covering `[start, end)` of `data`.
    ///
    /// # Panics
    /// When the window is out of bounds or inverted.
    pub fn new(data: Arc<[u8]>, start: usize, end: usize) -> ByteExtent {
        assert!(start <= end && end <= data.len(), "extent window out of bounds");
        ByteExtent { data, start, end }
    }

    /// An extent owning the whole of `data`.
    pub fn from_vec(data: Vec<u8>) -> ByteExtent {
        let data: Arc<[u8]> = data.into();
        let end = data.len();
        ByteExtent { data, start: 0, end }
    }

    /// The bytes this extent covers.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the extent covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Extents compare by the bytes they cover, not by chunk identity:
/// two lists describing the same logical contents are equal even when
/// chunked differently (required for `SysRet` equality in tests).
impl PartialEq for ByteExtent {
    fn eq(&self, other: &ByteExtent) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ByteExtent {}

/// An ordered list of extents describing one contiguous logical byte
/// range (a read result). `total` is the sum of the parts' lengths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentList {
    /// Total logical length in bytes.
    pub total: usize,
    /// The extents, in logical order.
    pub parts: Vec<ByteExtent>,
}

impl ExtentList {
    /// An empty list.
    pub fn empty() -> ExtentList {
        ExtentList::default()
    }

    /// A list with a single extent (used by driver-backed reads, which
    /// have no chunk structure to share).
    pub fn single(data: Vec<u8>) -> ExtentList {
        let total = data.len();
        if total == 0 {
            return ExtentList::empty();
        }
        ExtentList {
            total,
            parts: vec![ByteExtent::from_vec(data)],
        }
    }

    /// Flatten into one contiguous buffer (compat path; defeats the
    /// point of extents, so only borderlands like tests use it).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total);
        for p in &self.parts {
            out.extend_from_slice(p.as_slice());
        }
        out
    }

    /// True when no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// A regular file's contents: exact-length immutable chunks of a fixed
/// nominal size, copy-on-write per chunk.
///
/// Invariant: `chunks[i].len() == min(chunk, len - i*chunk)` for every
/// `i`, and `chunks.len() == ceil(len / chunk)` (zero when empty) —
/// i.e. every chunk is full except possibly the last, and lengths are
/// always exact (no slack capacity hidden in a chunk).
#[derive(Debug, Clone)]
pub(crate) struct FileContent {
    /// Nominal chunk size, fixed at creation.
    chunk: usize,
    /// Logical file length.
    len: usize,
    chunks: Vec<Arc<[u8]>>,
}

impl FileContent {
    /// An empty file with the given nominal chunk size.
    pub(crate) fn new(chunk_size: usize) -> FileContent {
        FileContent {
            chunk: chunk_size.clamp(MIN_CHUNK_SIZE, MAX_CHUNK_SIZE),
            len: 0,
            chunks: Vec::new(),
        }
    }

    /// Logical length in bytes.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Copy up to `out.len()` bytes starting at `off` into `out`;
    /// returns the count copied (0 at or past EOF).
    pub(crate) fn read_into(&self, off: usize, out: &mut [u8]) -> usize {
        if off >= self.len || out.is_empty() {
            return 0;
        }
        let n = out.len().min(self.len - off);
        let mut done = 0;
        while done < n {
            let pos = off + done;
            let ci = pos / self.chunk;
            let co = pos % self.chunk;
            let chunk = &self.chunks[ci];
            let take = (chunk.len() - co).min(n - done);
            out[done..done + take].copy_from_slice(&chunk[co..co + take]);
            done += take;
        }
        n
    }

    /// Borrow `[off, off+want)` (clamped to EOF) as cheap `Arc` clones
    /// of the underlying chunks. First and last extents are windowed;
    /// interior extents cover whole chunks. O(parts), no byte copies.
    pub(crate) fn extents(&self, off: usize, want: usize) -> ExtentList {
        if off >= self.len || want == 0 {
            return ExtentList::empty();
        }
        let n = want.min(self.len - off);
        let mut parts = Vec::with_capacity(n / self.chunk + 2);
        let mut done = 0;
        while done < n {
            let pos = off + done;
            let ci = pos / self.chunk;
            let co = pos % self.chunk;
            let chunk = &self.chunks[ci];
            let take = (chunk.len() - co).min(n - done);
            parts.push(ByteExtent::new(Arc::clone(chunk), co, co + take));
            done += take;
        }
        ExtentList { total: n, parts }
    }

    /// Flatten into one contiguous buffer (compat for `file_data`).
    pub(crate) fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for c in &self.chunks {
            out.extend_from_slice(c);
        }
        out
    }

    /// Write `data` at `off`, zero-filling any gap past EOF. Chunks
    /// fully or partially covered are patched in place when uniquely
    /// owned, rebuilt when shared (copy-on-write).
    pub(crate) fn write_at(&mut self, off: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if off > self.len {
            self.append_fill(off - self.len, None);
        }
        let overlap = self.len.saturating_sub(off).min(data.len());
        if overlap > 0 {
            self.overwrite(off, &data[..overlap]);
        }
        if overlap < data.len() {
            self.append_fill(data.len() - overlap, Some(&data[overlap..]));
        }
    }

    /// Truncate to `new_len`, or extend with zeros.
    pub(crate) fn resize(&mut self, new_len: usize) {
        if new_len < self.len {
            let keep = new_len.div_ceil(self.chunk);
            self.chunks.truncate(keep);
            let tail = new_len - (keep.saturating_sub(1)) * self.chunk;
            if keep > 0 && self.chunks[keep - 1].len() != tail {
                // Exact-length invariant: rebuild the now-partial tail.
                self.chunks[keep - 1] = self.chunks[keep - 1][..tail].into();
            }
            self.len = new_len;
        } else if new_len > self.len {
            self.append_fill(new_len - self.len, None);
        }
    }

    /// Overwrite `[off, off+data.len())`, which must lie entirely
    /// within the current length. Copy-on-write per chunk.
    fn overwrite(&mut self, off: usize, data: &[u8]) {
        debug_assert!(off + data.len() <= self.len);
        let mut done = 0;
        while done < data.len() {
            let pos = off + done;
            let ci = pos / self.chunk;
            let co = pos % self.chunk;
            let chunk = &mut self.chunks[ci];
            let take = (chunk.len() - co).min(data.len() - done);
            match Arc::get_mut(chunk) {
                Some(owned) => owned[co..co + take].copy_from_slice(&data[done..done + take]),
                None => {
                    // Shared with a reader: rebuild, leave theirs alone.
                    let mut v = chunk.to_vec();
                    v[co..co + take].copy_from_slice(&data[done..done + take]);
                    *chunk = v.into();
                }
            }
            done += take;
        }
    }

    /// Append `n` bytes at EOF: from `data` when given, zeros
    /// otherwise. Tops up the partial tail chunk first (rebuild — the
    /// length changes), then emits full chunks straight from `data`
    /// without intermediate buffers.
    fn append_fill(&mut self, n: usize, data: Option<&[u8]>) {
        debug_assert!(data.is_none_or(|d| d.len() == n));
        let mut done = 0;
        // Top up a partial tail chunk.
        let tail = self.len % self.chunk;
        if tail != 0 {
            let take = (self.chunk - tail).min(n);
            let last = self.chunks.last_mut().expect("partial tail implies a chunk");
            let mut v = Vec::with_capacity(tail + take);
            v.extend_from_slice(last);
            match data {
                Some(d) => v.extend_from_slice(&d[..take]),
                None => v.resize(tail + take, 0),
            }
            *last = v.into();
            done = take;
        }
        // Whole new chunks.
        while done < n {
            let take = (n - done).min(self.chunk);
            let chunk: Arc<[u8]> = match data {
                Some(d) => d[done..done + take].into(),
                None => vec![0u8; take].into(),
            };
            self.chunks.push(chunk);
            done += take;
        }
        self.len += n;
    }

    /// Number of chunks currently held (tests / invariant checks).
    #[cfg(test)]
    pub(crate) fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invariants(f: &FileContent) {
        assert_eq!(f.chunks.len(), f.len.div_ceil(f.chunk));
        for (i, c) in f.chunks.iter().enumerate() {
            let expect = (f.len - i * f.chunk).min(f.chunk);
            assert_eq!(c.len(), expect, "chunk {i} length");
        }
    }

    #[test]
    fn append_and_read_across_chunks() {
        let mut f = FileContent::new(512);
        let data: Vec<u8> = (0..1500u32).map(|i| (i % 251) as u8).collect();
        f.write_at(0, &data);
        invariants(&f);
        assert_eq!(f.len(), 1500);
        assert_eq!(f.chunk_count(), 3);
        assert_eq!(f.to_vec(), data);
        let mut buf = vec![0u8; 700];
        assert_eq!(f.read_into(400, &mut buf), 700);
        assert_eq!(&buf[..], &data[400..1100]);
    }

    #[test]
    fn gap_write_zero_fills() {
        let mut f = FileContent::new(512);
        f.write_at(1000, b"xyz");
        invariants(&f);
        assert_eq!(f.len(), 1003);
        let v = f.to_vec();
        assert!(v[..1000].iter().all(|&b| b == 0));
        assert_eq!(&v[1000..], b"xyz");
    }

    #[test]
    fn overwrite_is_cow_against_held_extents() {
        let mut f = FileContent::new(512);
        f.write_at(0, &vec![7u8; 1024]);
        let snapshot = f.extents(0, 1024);
        f.write_at(200, &vec![9u8; 700]);
        invariants(&f);
        // The reader's snapshot is untouched.
        assert!(snapshot.to_vec().iter().all(|&b| b == 7));
        let now = f.to_vec();
        assert!(now[200..900].iter().all(|&b| b == 9));
        assert!(now[..200].iter().all(|&b| b == 7));
        assert!(now[900..].iter().all(|&b| b == 7));
    }

    #[test]
    fn unshared_overwrite_patches_in_place() {
        let mut f = FileContent::new(512);
        f.write_at(0, &vec![1u8; 512]);
        let before = Arc::as_ptr(&f.chunks[0]);
        f.write_at(10, b"abc");
        assert_eq!(Arc::as_ptr(&f.chunks[0]), before, "uniquely owned chunk rebuilt");
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut f = FileContent::new(512);
        f.write_at(0, &vec![5u8; 1300]);
        f.resize(600);
        invariants(&f);
        assert_eq!(f.len(), 600);
        assert_eq!(f.chunk_count(), 2);
        f.resize(2000);
        invariants(&f);
        let v = f.to_vec();
        assert!(v[..600].iter().all(|&b| b == 5));
        assert!(v[600..].iter().all(|&b| b == 0));
        f.resize(0);
        invariants(&f);
        assert_eq!(f.chunk_count(), 0);
    }

    #[test]
    fn extents_window_first_and_last() {
        let mut f = FileContent::new(512);
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 256) as u8).collect();
        f.write_at(0, &data);
        let x = f.extents(100, 1000);
        assert_eq!(x.total, 1000);
        assert_eq!(x.to_vec(), &data[100..1100]);
        // Reads past EOF clamp; reads at EOF are empty.
        assert_eq!(f.extents(1990, 100).total, 10);
        assert!(f.extents(2000, 10).is_empty());
        assert!(f.extents(0, 0).is_empty());
    }

    #[test]
    fn extent_equality_ignores_chunking() {
        let a = ExtentList::single(b"hello world".to_vec());
        let mut f = FileContent::new(512);
        f.write_at(0, b"hello world");
        let b = f.extents(0, 11);
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
