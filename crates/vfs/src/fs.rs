//! The filesystem proper.

use crate::inode::{Inode, Payload};
use crate::path::{self, NAME_MAX, PATH_MAX};
use crate::{Access, FileKind, Ino, StatBuf};
use idbox_types::{Errno, SysResult};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Credentials used for Unix permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cred {
    /// User id. Uid 0 is the superuser and bypasses permission checks.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
}

impl Cred {
    /// The superuser.
    pub const ROOT: Cred = Cred { uid: 0, gid: 0 };

    /// An ordinary credential.
    pub fn new(uid: u32, gid: u32) -> Self {
        Cred { uid, gid }
    }
}

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (`.` and `..` included, as in a real kernel).
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// Kind of the referenced inode.
    pub kind: FileKind,
}

/// Maximum symlink traversals in one resolution (Linux uses 40).
const SYMLOOP_MAX: u32 = 40;

/// Bound on cached dentries. On overflow the whole cache is dropped and
/// rebuilt — stale-generation leftovers go with it, so the map never
/// grows past this many entries.
const DENTRY_CACHE_CAP: usize = 8192;

/// A bounded positive+negative directory-entry cache.
///
/// One entry memoizes `dir_entries(dir).get(name)`: the inode a name
/// binds to in a directory, or the fact that the name is absent
/// (`None`, a negative entry). Every entry is stamped with the
/// filesystem change generation current at insert time and honoured
/// only while that generation still is: every mutating operation bumps
/// the generation through [`Vfs::tick`], so no hit can survive a
/// rename/unlink/link/symlink/mkdir/create — or any other change —
/// that could alter the answer. Only the map lookup itself is
/// short-circuited; directory-kind checks, permission checks, and
/// symlink traversal still run on every resolution, which is what keeps
/// the cached walk provably identical to the uncached one (property
/// tested in `tests/props.rs`).
///
/// The cache sits behind its own small `RwLock`: resolution takes
/// `&self` (the kernel dispatches read-only syscalls under a shared
/// lock), so hits are a read-lock plus two `HashMap` probes and fills
/// are a short write-lock. Entries are keyed per directory so hit-path
/// probes borrow the component name instead of allocating a `String`.
#[derive(Debug)]
struct DentryCache {
    /// Change generation: bumped by every mutating vfs operation. Also
    /// the validity key for caches *outside* the vfs (the identity
    /// box's ACL caches), exposed via [`Vfs::change_generation`].
    generation: AtomicU64,
    map: RwLock<DentryMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct DentryMap {
    by_dir: HashMap<Ino, HashMap<String, (u64, Option<Ino>)>>,
    len: usize,
}

impl DentryCache {
    fn new() -> Self {
        DentryCache {
            generation: AtomicU64::new(0),
            map: RwLock::new(DentryMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Invalidate every cached entry by advancing the generation.
    /// Mutations run under `&mut Vfs` (the kernel's exclusive lock), so
    /// readers are ordered against this bump by the outer lock; the
    /// atomic only needs to be a shared counter, not a fence.
    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Cached lookup; `None` means "not cached", `Some(slot)` is the
    /// memoized answer (which may itself be a negative `None`).
    fn lookup(&self, dir: Ino, name: &str) -> Option<Option<Ino>> {
        let gen = self.generation();
        let hit = self
            .map
            .read()
            .by_dir
            .get(&dir)
            .and_then(|m| m.get(name))
            .and_then(|&(g, slot)| (g == gen).then_some(slot));
        match hit {
            Some(slot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, dir: Ino, name: &str, slot: Option<Ino>) {
        let gen = self.generation();
        let mut map = self.map.write();
        if map.len >= DENTRY_CACHE_CAP {
            map.by_dir.clear();
            map.len = 0;
        }
        let prev = map
            .by_dir
            .entry(dir)
            .or_default()
            .insert(name.to_string(), (gen, slot));
        if prev.is_none() {
            map.len += 1;
        }
    }

    fn clear(&self) {
        let mut map = self.map.write();
        map.by_dir.clear();
        map.len = 0;
    }
}

/// A clone starts cold: the cache is a pure accelerator, so a cloned
/// filesystem gets a fresh one (same generation, no entries).
impl Clone for DentryCache {
    fn clone(&self) -> Self {
        DentryCache {
            generation: AtomicU64::new(self.generation()),
            map: RwLock::new(DentryMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// An errno-injection hook for fault testing: called once per data
/// operation with the operation name (`"read"` / `"write"`) and the
/// target inode; returning `Some(errno)` fails that operation instead
/// of performing it. Installed via [`Vfs::set_fault_hook`]; production
/// filesystems never carry one. The robustness suite drives it from a
/// seeded `FaultPlan` so "the disk returned EIO" is reproducible.
#[derive(Clone)]
pub struct FaultHook(Arc<dyn Fn(&'static str, Ino) -> Option<Errno> + Send + Sync>);

impl FaultHook {
    /// Wrap an injection function.
    pub fn new(f: impl Fn(&'static str, Ino) -> Option<Errno> + Send + Sync + 'static) -> Self {
        FaultHook(Arc::new(f))
    }

    fn check(&self, op: &'static str, ino: Ino) -> SysResult<()> {
        match (self.0)(op, ino) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

/// The in-memory filesystem.
///
/// All operations take a *start directory* (the caller's cwd) and a path;
/// absolute paths ignore the start. Permission checks follow Unix rules
/// against the supplied [`Cred`]; uid 0 bypasses them.
#[derive(Debug, Clone)]
pub struct Vfs {
    inodes: Vec<Option<Inode>>,
    free: Vec<u64>,
    clock: u64,
    root: Ino,
    dcache: DentryCache,
    dcache_enabled: bool,
    fault_hook: Option<FaultHook>,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

impl Vfs {
    /// A fresh filesystem containing only a root directory owned by root
    /// with mode `0o755`.
    pub fn new() -> Self {
        let mut vfs = Vfs {
            inodes: vec![None],
            free: Vec::new(),
            clock: 0,
            root: Ino(1),
            dcache: DentryCache::new(),
            dcache_enabled: true,
            fault_hook: None,
        };
        let mut entries = BTreeMap::new();
        entries.insert(".".to_string(), Ino(1));
        entries.insert("..".to_string(), Ino(1));
        vfs.inodes.push(Some(Inode {
            payload: Payload::Dir(entries),
            mode: 0o755,
            uid: 0,
            gid: 0,
            nlink: 2,
            pins: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
        }));
        vfs
    }

    /// The root directory.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Advance and return the logical clock. Every mutating operation
    /// passes through here, so this is also where the change generation
    /// is bumped: after any write — namespace or content — every cached
    /// dentry (and every generation-keyed cache outside the vfs) is
    /// stale. Content writes over-invalidate the dentry cache, but they
    /// are exactly what the ACL caches must observe (`.__acl` bytes
    /// change without any namespace event), and one coarse generation
    /// keeps both provably safe.
    fn tick(&mut self) -> u64 {
        self.dcache.bump();
        self.clock += 1;
        self.clock
    }

    /// The filesystem change generation: a counter bumped by every
    /// mutating operation. Caches keyed by `(generation, ...)` — the
    /// dentry cache here, the identity box's ACL caches above — are
    /// automatically invalidated by any change that could affect them.
    pub fn change_generation(&self) -> u64 {
        self.dcache.generation()
    }

    /// Dentry-cache counters: `(hits, misses)` since creation.
    pub fn dentry_stats(&self) -> (u64, u64) {
        (
            self.dcache.hits.load(Ordering::Relaxed),
            self.dcache.misses.load(Ordering::Relaxed),
        )
    }

    /// Enable or disable the dentry cache (on by default; the ablation
    /// benches turn it off to measure the uncached walk). Disabling
    /// drops all cached entries.
    pub fn set_dentry_cache(&mut self, enabled: bool) {
        self.dcache_enabled = enabled;
        if !enabled {
            self.dcache.clear();
        }
    }

    /// Install (or clear, with `None`) the errno-injection hook consulted
    /// by data operations ([`Vfs::read_into`], [`Vfs::write_at`]).
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// Number of live inodes (for tests and invariant checks).
    pub fn live_inodes(&self) -> usize {
        self.inodes.iter().filter(|i| i.is_some()).count()
    }

    // ------------------------------------------------------------------
    // Inode plumbing
    // ------------------------------------------------------------------

    fn get(&self, ino: Ino) -> SysResult<&Inode> {
        self.inodes
            .get(ino.0 as usize)
            .and_then(|i| i.as_ref())
            .ok_or(Errno::ENOENT)
    }

    fn get_mut(&mut self, ino: Ino) -> SysResult<&mut Inode> {
        self.inodes
            .get_mut(ino.0 as usize)
            .and_then(|i| i.as_mut())
            .ok_or(Errno::ENOENT)
    }

    fn alloc(&mut self, inode: Inode) -> Ino {
        if let Some(idx) = self.free.pop() {
            self.inodes[idx as usize] = Some(inode);
            Ino(idx)
        } else {
            self.inodes.push(Some(inode));
            Ino(self.inodes.len() as u64 - 1)
        }
    }

    /// Free the inode's storage if it has no links and no pins.
    fn maybe_free(&mut self, ino: Ino) {
        if let Ok(inode) = self.get(ino) {
            if inode.nlink == 0 && inode.pins == 0 {
                self.inodes[ino.0 as usize] = None;
                self.free.push(ino.0);
            }
        }
    }

    /// Pin an inode (an open file descriptor references it); pinned
    /// inodes survive `unlink` until unpinned.
    pub fn pin(&mut self, ino: Ino) -> SysResult<()> {
        self.get_mut(ino)?.pins += 1;
        Ok(())
    }

    /// Drop a pin; frees the inode if it is fully unlinked.
    pub fn unpin(&mut self, ino: Ino) -> SysResult<()> {
        let inode = self.get_mut(ino)?;
        inode.pins = inode.pins.saturating_sub(1);
        self.maybe_free(ino);
        Ok(())
    }

    fn dir_entries(&self, ino: Ino) -> SysResult<&BTreeMap<String, Ino>> {
        match &self.get(ino)?.payload {
            Payload::Dir(entries) => Ok(entries),
            _ => Err(Errno::ENOTDIR),
        }
    }

    fn dir_entries_mut(&mut self, ino: Ino) -> SysResult<&mut BTreeMap<String, Ino>> {
        match &mut self.get_mut(ino)?.payload {
            Payload::Dir(entries) => Ok(entries),
            _ => Err(Errno::ENOTDIR),
        }
    }

    /// One directory-entry lookup, through the dentry cache: exactly
    /// `self.dir_entries(dir)?.get(name).copied()`, memoized. `None`
    /// means the name is absent (negative entries are cached too). The
    /// answer is credential-independent — callers perform their own
    /// kind and permission checks, cached or not.
    fn lookup_entry(&self, dir: Ino, name: &str) -> SysResult<Option<Ino>> {
        if !self.dcache_enabled {
            return Ok(self.dir_entries(dir)?.get(name).copied());
        }
        if let Some(slot) = self.dcache.lookup(dir, name) {
            return Ok(slot);
        }
        let slot = self.dir_entries(dir)?.get(name).copied();
        self.dcache.insert(dir, name, slot);
        Ok(slot)
    }

    // ------------------------------------------------------------------
    // Permission checks
    // ------------------------------------------------------------------

    /// Unix permission check on one inode.
    pub fn check_access(&self, ino: Ino, cred: &Cred, want: Access) -> SysResult<()> {
        let inode = self.get(ino)?;
        if cred.uid == 0 {
            return Ok(());
        }
        let triad = if cred.uid == inode.uid {
            (inode.mode >> 6) & 7
        } else if cred.gid == inode.gid {
            (inode.mode >> 3) & 7
        } else {
            inode.mode & 7
        };
        if triad as u8 & want.0 == want.0 {
            Ok(())
        } else {
            Err(Errno::EACCES)
        }
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    fn check_path(path: &str) -> SysResult<()> {
        if path.len() > PATH_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        Ok(())
    }

    /// Resolve a path to an inode, following symlinks (including the final
    /// component when `follow_last`). `start` is the directory for
    /// relative paths. Traversal requires search (`x`) permission on every
    /// directory walked.
    pub fn resolve(
        &self,
        start: Ino,
        p: &str,
        follow_last: bool,
        cred: &Cred,
    ) -> SysResult<Ino> {
        Self::check_path(p)?;
        let mut budget = SYMLOOP_MAX;
        self.resolve_inner(start, p, follow_last, cred, &mut budget)
    }

    fn resolve_inner(
        &self,
        start: Ino,
        p: &str,
        follow_last: bool,
        cred: &Cred,
        budget: &mut u32,
    ) -> SysResult<Ino> {
        let mut cur = if path::is_absolute(p) { self.root } else { start };
        // Worklist of components still to walk, in order.
        let mut work: Vec<String> = path::components(p).map(str::to_string).collect();
        let mut i = 0;
        while i < work.len() {
            let comp = work[i].clone();
            i += 1;
            if comp.len() > NAME_MAX {
                return Err(Errno::ENAMETOOLONG);
            }
            // Traversal requires the current node to be a searchable dir.
            if self.get(cur)?.payload.kind() != FileKind::Dir {
                return Err(Errno::ENOTDIR);
            }
            self.check_access(cur, cred, Access::X)?;
            let next = self.lookup_entry(cur, &comp)?.ok_or(Errno::ENOENT)?;
            let is_last = i == work.len();
            if let Payload::Symlink(target) = &self.get(next)?.payload {
                if !is_last || follow_last {
                    if *budget == 0 {
                        return Err(Errno::ELOOP);
                    }
                    *budget -= 1;
                    let target = target.clone();
                    // Splice the target's components in place of the link.
                    let mut rest: Vec<String> =
                        path::components(&target).map(str::to_string).collect();
                    rest.extend(work.drain(i..));
                    work = rest;
                    i = 0;
                    if path::is_absolute(&target) {
                        cur = self.root;
                    }
                    continue;
                }
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolve everything but the final component (following symlinks),
    /// returning the parent directory and the final name. Fails with
    /// `EINVAL` when the path names the root.
    pub fn resolve_parent(
        &self,
        start: Ino,
        p: &str,
        cred: &Cred,
    ) -> SysResult<(Ino, String)> {
        Self::check_path(p)?;
        let (parent, name) = path::split_parent(p).ok_or(Errno::EINVAL)?;
        if name.len() > NAME_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        let dir = self.resolve(start, parent, true, cred)?;
        if self.get(dir)?.payload.kind() != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        Ok((dir, name.to_string()))
    }

    /// Resolve a path to the directory that *really* contains the final
    /// object, following any chain of symlinks on the final component.
    ///
    /// This is the primitive the identity box uses against the "indirect
    /// paths" pitfall: the ACL consulted must be the one in the directory
    /// where the target actually lives, not where the link does. Returns
    /// `(containing_dir, entry_name, Some(target_ino))`, or `None` as the
    /// third element when the entry does not exist (creation case).
    pub fn resolve_entry(
        &self,
        start: Ino,
        p: &str,
        cred: &Cred,
    ) -> SysResult<(Ino, String, Option<Ino>)> {
        Self::check_path(p)?;
        let mut budget = SYMLOOP_MAX;
        let mut cur_start = start;
        let mut cur_path = p.to_string();
        loop {
            let (dir, name) = self.resolve_parent(cur_start, &cur_path, cred)?;
            // Looking up the final entry is a search of `dir`: the caller
            // needs execute permission on it, same as mid-path traversal.
            self.check_access(dir, cred, Access::X)?;
            if name == "." || name == ".." {
                // Resolve fully; the entry certainly exists.
                let ino = self.resolve(cur_start, &cur_path, true, cred)?;
                return Ok((dir, name, Some(ino)));
            }
            match self.lookup_entry(dir, &name)? {
                None => return Ok((dir, name, None)),
                Some(ino) => {
                    if let Payload::Symlink(target) = &self.get(ino)?.payload {
                        if budget == 0 {
                            return Err(Errno::ELOOP);
                        }
                        budget -= 1;
                        cur_path = target.clone();
                        cur_start = dir;
                        continue;
                    }
                    return Ok((dir, name, Some(ino)));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // File operations
    // ------------------------------------------------------------------

    /// Create a regular file. Fails with `EEXIST` when the name is taken.
    pub fn create(
        &mut self,
        start: Ino,
        p: &str,
        mode: u16,
        cred: &Cred,
    ) -> SysResult<Ino> {
        let (dir, name) = self.resolve_parent(start, p, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EEXIST);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let ino = self.alloc(Inode {
            payload: Payload::File(Vec::new()),
            mode: mode & 0o7777,
            uid: cred.uid,
            gid: cred.gid,
            nlink: 1,
            pins: 0,
            atime: now,
            mtime: now,
            ctime: now,
        });
        self.dir_entries_mut(dir)?.insert(name, ino);
        let dir_inode = self.get_mut(dir)?;
        dir_inode.mtime = now;
        Ok(ino)
    }

    /// Read up to `out.len()` bytes at `off`; returns bytes read (0 at or
    /// past EOF).
    ///
    /// Reads are "noatime": they take `&self` and leave the inode
    /// untouched, so concurrent readers can share the filesystem borrow
    /// (the kernel dispatches read-only syscalls under a shared lock).
    pub fn read_into(&self, ino: Ino, off: u64, out: &mut [u8]) -> SysResult<usize> {
        if let Some(hook) = &self.fault_hook {
            hook.check("read", ino)?;
        }
        let inode = self.get(ino)?;
        let data = match &inode.payload {
            Payload::File(data) => data,
            Payload::Dir(_) => return Err(Errno::EISDIR),
            Payload::Symlink(_) => return Err(Errno::EINVAL),
        };
        let off = off as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = out.len().min(data.len() - off);
        out[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    /// Borrow a file's full contents.
    pub fn file_data(&self, ino: Ino) -> SysResult<&[u8]> {
        match &self.get(ino)?.payload {
            Payload::File(data) => Ok(data),
            Payload::Dir(_) => Err(Errno::EISDIR),
            Payload::Symlink(_) => Err(Errno::EINVAL),
        }
    }

    /// Write `data` at `off`, growing the file (zero-filling any gap).
    /// Returns bytes written.
    pub fn write_at(&mut self, ino: Ino, off: u64, data: &[u8]) -> SysResult<usize> {
        if let Some(hook) = &self.fault_hook {
            hook.check("write", ino)?;
        }
        let now = self.tick();
        let inode = self.get_mut(ino)?;
        let file = match &mut inode.payload {
            Payload::File(file) => file,
            Payload::Dir(_) => return Err(Errno::EISDIR),
            Payload::Symlink(_) => return Err(Errno::EINVAL),
        };
        let off = off as usize;
        let end = off.checked_add(data.len()).ok_or(Errno::EFBIG)?;
        if end > file.len() {
            file.resize(end, 0);
        }
        file[off..end].copy_from_slice(data);
        inode.mtime = now;
        Ok(data.len())
    }

    /// Truncate (or extend with zeros) a file to `len`.
    pub fn truncate(&mut self, ino: Ino, len: u64) -> SysResult<()> {
        let now = self.tick();
        let inode = self.get_mut(ino)?;
        match &mut inode.payload {
            Payload::File(file) => {
                file.resize(len as usize, 0);
                inode.mtime = now;
                Ok(())
            }
            Payload::Dir(_) => Err(Errno::EISDIR),
            Payload::Symlink(_) => Err(Errno::EINVAL),
        }
    }

    // ------------------------------------------------------------------
    // Directory operations
    // ------------------------------------------------------------------

    /// Create a directory.
    pub fn mkdir(
        &mut self,
        start: Ino,
        p: &str,
        mode: u16,
        cred: &Cred,
    ) -> SysResult<Ino> {
        let (dir, name) = self.resolve_parent(start, p, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EEXIST);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let mut entries = BTreeMap::new();
        let ino = self.alloc(Inode {
            payload: Payload::Dir(BTreeMap::new()),
            mode: mode & 0o7777,
            uid: cred.uid,
            gid: cred.gid,
            nlink: 2,
            pins: 0,
            atime: now,
            mtime: now,
            ctime: now,
        });
        entries.insert(".".to_string(), ino);
        entries.insert("..".to_string(), dir);
        *self.dir_entries_mut(ino)? = entries;
        self.dir_entries_mut(dir)?.insert(name, ino);
        let parent = self.get_mut(dir)?;
        parent.nlink += 1; // the new child's ".."
        parent.mtime = now;
        Ok(ino)
    }

    /// Remove an empty directory.
    pub fn rmdir(&mut self, start: Ino, p: &str, cred: &Cred) -> SysResult<()> {
        let (dir, name) = self.resolve_parent(start, p, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        let target = *self.dir_entries(dir)?.get(&name).ok_or(Errno::ENOENT)?;
        let entries = self.dir_entries(target)?;
        if entries.keys().any(|k| k != "." && k != "..") {
            return Err(Errno::ENOTEMPTY);
        }
        let now = self.tick();
        self.dir_entries_mut(dir)?.remove(&name);
        let parent = self.get_mut(dir)?;
        parent.nlink -= 1;
        parent.mtime = now;
        let t = self.get_mut(target)?;
        t.nlink = 0;
        self.maybe_free(target);
        Ok(())
    }

    /// Remove a non-directory entry. The inode survives while pinned.
    pub fn unlink(&mut self, start: Ino, p: &str, cred: &Cred) -> SysResult<()> {
        let (dir, name) = self.resolve_parent(start, p, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EINVAL);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        let target = *self.dir_entries(dir)?.get(&name).ok_or(Errno::ENOENT)?;
        if self.get(target)?.payload.kind() == FileKind::Dir {
            return Err(Errno::EISDIR);
        }
        let now = self.tick();
        self.dir_entries_mut(dir)?.remove(&name);
        self.get_mut(dir)?.mtime = now;
        let t = self.get_mut(target)?;
        t.nlink -= 1;
        t.ctime = now;
        self.maybe_free(target);
        Ok(())
    }

    /// Create a hard link `newp` to the object at `oldp`. Directories
    /// cannot be hard-linked.
    pub fn link(&mut self, start: Ino, oldp: &str, newp: &str, cred: &Cred) -> SysResult<()> {
        let target = self.resolve(start, oldp, false, cred)?;
        if self.get(target)?.payload.kind() == FileKind::Dir {
            return Err(Errno::EPERM);
        }
        let (dir, name) = self.resolve_parent(start, newp, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EEXIST);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        self.dir_entries_mut(dir)?.insert(name, target);
        self.get_mut(dir)?.mtime = now;
        let t = self.get_mut(target)?;
        t.nlink += 1;
        t.ctime = now;
        Ok(())
    }

    /// Create a symbolic link at `linkp` pointing to `target` (an
    /// arbitrary, possibly dangling, string).
    pub fn symlink(
        &mut self,
        start: Ino,
        target: &str,
        linkp: &str,
        cred: &Cred,
    ) -> SysResult<Ino> {
        if target.len() > PATH_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        let (dir, name) = self.resolve_parent(start, linkp, cred)?;
        if name == "." || name == ".." {
            return Err(Errno::EEXIST);
        }
        self.check_access(dir, cred, Access::W.and(Access::X))?;
        if self.dir_entries(dir)?.contains_key(&name) {
            return Err(Errno::EEXIST);
        }
        let now = self.tick();
        let ino = self.alloc(Inode {
            payload: Payload::Symlink(target.to_string()),
            mode: 0o777,
            uid: cred.uid,
            gid: cred.gid,
            nlink: 1,
            pins: 0,
            atime: now,
            mtime: now,
            ctime: now,
        });
        self.dir_entries_mut(dir)?.insert(name, ino);
        self.get_mut(dir)?.mtime = now;
        Ok(ino)
    }

    /// Read a symlink's target.
    pub fn readlink(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<String> {
        let ino = self.resolve(start, p, false, cred)?;
        match &self.get(ino)?.payload {
            Payload::Symlink(target) => Ok(target.clone()),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Rename `oldp` to `newp`. Replaces an existing target when the
    /// kinds are compatible (a directory target must be empty). Refuses
    /// to move a directory into its own subtree.
    pub fn rename(&mut self, start: Ino, oldp: &str, newp: &str, cred: &Cred) -> SysResult<()> {
        let (odir, oname) = self.resolve_parent(start, oldp, cred)?;
        let (ndir, nname) = self.resolve_parent(start, newp, cred)?;
        if oname == "." || oname == ".." || nname == "." || nname == ".." {
            return Err(Errno::EINVAL);
        }
        self.check_access(odir, cred, Access::W.and(Access::X))?;
        self.check_access(ndir, cred, Access::W.and(Access::X))?;
        let src = *self.dir_entries(odir)?.get(&oname).ok_or(Errno::ENOENT)?;
        let src_is_dir = self.get(src)?.payload.kind() == FileKind::Dir;
        if src_is_dir && self.is_same_or_ancestor(src, ndir)? {
            return Err(Errno::EINVAL);
        }
        // Handle an existing destination.
        if let Some(&dst) = self.dir_entries(ndir)?.get(&nname) {
            if dst == src {
                return Ok(()); // rename to itself is a no-op
            }
            let dst_is_dir = self.get(dst)?.payload.kind() == FileKind::Dir;
            match (src_is_dir, dst_is_dir) {
                (true, false) => return Err(Errno::ENOTDIR),
                (false, true) => return Err(Errno::EISDIR),
                (true, true) => {
                    let entries = self.dir_entries(dst)?;
                    if entries.keys().any(|k| k != "." && k != "..") {
                        return Err(Errno::ENOTEMPTY);
                    }
                    self.dir_entries_mut(ndir)?.remove(&nname);
                    self.get_mut(ndir)?.nlink -= 1;
                    let d = self.get_mut(dst)?;
                    d.nlink = 0;
                    self.maybe_free(dst);
                }
                (false, false) => {
                    self.dir_entries_mut(ndir)?.remove(&nname);
                    let d = self.get_mut(dst)?;
                    d.nlink -= 1;
                    self.maybe_free(dst);
                }
            }
        }
        let now = self.tick();
        self.dir_entries_mut(odir)?.remove(&oname);
        self.dir_entries_mut(ndir)?.insert(nname, src);
        if src_is_dir && odir != ndir {
            // Fix the moved directory's ".." and the parents' link counts.
            self.dir_entries_mut(src)?.insert("..".to_string(), ndir);
            self.get_mut(odir)?.nlink -= 1;
            self.get_mut(ndir)?.nlink += 1;
        }
        self.get_mut(odir)?.mtime = now;
        self.get_mut(ndir)?.mtime = now;
        Ok(())
    }

    /// True when `anc` is `node` or an ancestor of `node`.
    fn is_same_or_ancestor(&self, anc: Ino, node: Ino) -> SysResult<bool> {
        let mut cur = node;
        loop {
            if cur == anc {
                return Ok(true);
            }
            let parent = *self
                .dir_entries(cur)?
                .get("..")
                .ok_or(Errno::EIO)?;
            if parent == cur {
                return Ok(false); // reached root
            }
            cur = parent;
        }
    }

    /// List a directory (requires read permission on it). Like
    /// [`Vfs::read_into`], listing is "noatime" and shares the borrow.
    pub fn readdir(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<Vec<DirEntry>> {
        let dir = self.resolve(start, p, true, cred)?;
        self.check_access(dir, cred, Access::R)?;
        let entries = self.dir_entries(dir)?;
        let mut out = Vec::with_capacity(entries.len());
        for (name, &ino) in entries {
            out.push(DirEntry {
                name: name.clone(),
                ino,
                kind: self.get(ino)?.payload.kind(),
            });
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Metadata operations
    // ------------------------------------------------------------------

    /// `stat` / `lstat` depending on `follow`.
    pub fn stat(&self, start: Ino, p: &str, follow: bool, cred: &Cred) -> SysResult<StatBuf> {
        let ino = self.resolve(start, p, follow, cred)?;
        Ok(self.get(ino)?.stat(ino))
    }

    /// `fstat` by inode.
    pub fn fstat(&self, ino: Ino) -> SysResult<StatBuf> {
        Ok(self.get(ino)?.stat(ino))
    }

    /// Change permission bits; only the owner or root may.
    pub fn chmod(&mut self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        let now = self.tick();
        let uid = cred.uid;
        let inode = self.get_mut(ino)?;
        if uid != 0 && uid != inode.uid {
            return Err(Errno::EPERM);
        }
        inode.mode = mode & 0o7777;
        inode.ctime = now;
        Ok(())
    }

    /// Change ownership; only root may change the uid, the owner may
    /// change the gid to their own group.
    pub fn chown(
        &mut self,
        start: Ino,
        p: &str,
        uid: u32,
        gid: u32,
        cred: &Cred,
    ) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        let now = self.tick();
        let caller = *cred;
        let inode = self.get_mut(ino)?;
        if caller.uid != 0 {
            let owner_chgrp =
                caller.uid == inode.uid && uid == inode.uid && gid == caller.gid;
            if !owner_chgrp {
                return Err(Errno::EPERM);
            }
        }
        inode.uid = uid;
        inode.gid = gid;
        inode.ctime = now;
        Ok(())
    }

    /// `access(2)`: does `cred` hold `want` on the object at `p`?
    pub fn access(&self, start: Ino, p: &str, want: Access, cred: &Cred) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        self.check_access(ino, cred, want)
    }

    // ------------------------------------------------------------------
    // Convenience helpers (used heavily by the kernel and tests)
    // ------------------------------------------------------------------

    /// Create or replace a file at `p` with the given contents.
    pub fn write_file(&mut self, start: Ino, p: &str, data: &[u8], cred: &Cred) -> SysResult<Ino> {
        let ino = match self.resolve(start, p, true, cred) {
            Ok(ino) => {
                self.check_access(ino, cred, Access::W)?;
                self.truncate(ino, 0)?;
                ino
            }
            Err(Errno::ENOENT) => self.create(start, p, 0o644, cred)?,
            Err(e) => return Err(e),
        };
        self.write_at(ino, 0, data)?;
        Ok(ino)
    }

    /// Read a whole file.
    pub fn read_file(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<Vec<u8>> {
        let ino = self.resolve(start, p, true, cred)?;
        self.check_access(ino, cred, Access::R)?;
        Ok(self.file_data(ino)?.to_vec())
    }

    /// `mkdir -p`: create every missing directory along `p`.
    pub fn mkdir_all(&mut self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<Ino> {
        let mut cur = if path::is_absolute(p) { self.root } else { start };
        for comp in path::components(p) {
            let next = match self.dir_entries(cur)?.get(comp) {
                Some(&ino) => ino,
                None => self.mkdir(cur, comp, mode, cred)?,
            };
            cur = next;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Vfs {
        Vfs::new()
    }

    const ROOT: Cred = Cred::ROOT;

    #[test]
    fn create_and_read_back() {
        let mut v = fs();
        let ino = v.create(v.root(), "/hello", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"world").unwrap();
        let mut buf = [0u8; 16];
        let n = v.read_into(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn read_at_offset_and_eof() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"abcdef").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(v.read_into(ino, 2, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"cde");
        assert_eq!(v.read_into(ino, 100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 4, b"x").unwrap();
        assert_eq!(v.file_data(ino).unwrap(), &[0, 0, 0, 0, b'x']);
    }

    #[test]
    fn mkdir_and_nested_create() {
        let mut v = fs();
        v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/home/fred", 0o700, &ROOT).unwrap();
        v.create(v.root(), "/home/fred/data", 0o644, &ROOT).unwrap();
        let st = v.stat(v.root(), "/home/fred/data", true, &ROOT).unwrap();
        assert!(st.is_file());
    }

    #[test]
    fn mkdir_all_idempotent() {
        let mut v = fs();
        let a = v.mkdir_all(v.root(), "/a/b/c", 0o755, &ROOT).unwrap();
        let b = v.mkdir_all(v.root(), "/a/b/c", 0o755, &ROOT).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn enoent_and_eexist() {
        let mut v = fs();
        assert_eq!(
            v.stat(v.root(), "/missing", true, &ROOT),
            Err(Errno::ENOENT)
        );
        v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        assert_eq!(v.create(v.root(), "/f", 0o644, &ROOT), Err(Errno::EEXIST));
        assert_eq!(v.mkdir(v.root(), "/f", 0o755, &ROOT), Err(Errno::EEXIST));
    }

    #[test]
    fn relative_paths_resolve_from_start() {
        let mut v = fs();
        let home = v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.create(home, "notes.txt", 0o644, &ROOT).unwrap();
        assert!(v.stat(home, "notes.txt", true, &ROOT).unwrap().is_file());
        assert!(v
            .stat(home, "../home/notes.txt", true, &ROOT)
            .unwrap()
            .is_file());
        assert!(v.stat(home, "./notes.txt", true, &ROOT).unwrap().is_file());
    }

    #[test]
    fn dotdot_at_root_stays_at_root() {
        let v = fs();
        let r = v.resolve(v.root(), "/../../..", true, &ROOT).unwrap();
        assert_eq!(r, v.root());
    }

    #[test]
    fn unix_permissions_enforced() {
        let mut v = fs();
        let alice = Cred::new(100, 100);
        let bob = Cred::new(200, 200);
        v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/home/alice", 0o700, &ROOT).unwrap();
        v.chown(v.root(), "/home/alice", 100, 100, &ROOT).unwrap();
        let f = v.create(v.root(), "/home/alice/secret", 0o600, &alice).unwrap();
        v.write_at(f, 0, b"shh").unwrap();
        // Bob cannot traverse alice's 0700 home.
        assert_eq!(
            v.stat(v.root(), "/home/alice/secret", true, &bob),
            Err(Errno::EACCES)
        );
        // Alice can.
        assert!(v.stat(v.root(), "/home/alice/secret", true, &alice).is_ok());
        // Root always can.
        assert!(v.stat(v.root(), "/home/alice/secret", true, &ROOT).is_ok());
    }

    #[test]
    fn group_and_other_triads() {
        let mut v = fs();
        v.create(v.root(), "/f", 0o640, &ROOT).unwrap();
        v.chown(v.root(), "/f", 100, 50, &ROOT).unwrap();
        let groupmate = Cred::new(200, 50);
        let stranger = Cred::new(300, 300);
        let f = v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        assert!(v.check_access(f, &groupmate, Access::R).is_ok());
        assert_eq!(v.check_access(f, &groupmate, Access::W), Err(Errno::EACCES));
        assert_eq!(v.check_access(f, &stranger, Access::R), Err(Errno::EACCES));
    }

    #[test]
    fn symlink_follow_and_nofollow() {
        let mut v = fs();
        v.create(v.root(), "/target", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "/target", "/link", &ROOT).unwrap();
        let followed = v.stat(v.root(), "/link", true, &ROOT).unwrap();
        assert!(followed.is_file());
        let nofollow = v.stat(v.root(), "/link", false, &ROOT).unwrap();
        assert!(nofollow.is_symlink());
        assert_eq!(v.readlink(v.root(), "/link", &ROOT).unwrap(), "/target");
    }

    #[test]
    fn symlink_chain_and_relative_targets() {
        let mut v = fs();
        v.mkdir(v.root(), "/a", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/a/real", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "real", "/a/l1", &ROOT).unwrap();
        v.symlink(v.root(), "/a/l1", "/l2", &ROOT).unwrap();
        let st = v.stat(v.root(), "/l2", true, &ROOT).unwrap();
        assert!(st.is_file());
    }

    #[test]
    fn symlink_loop_detected() {
        let mut v = fs();
        v.symlink(v.root(), "/b", "/a", &ROOT).unwrap();
        v.symlink(v.root(), "/a", "/b", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/a", true, &ROOT), Err(Errno::ELOOP));
    }

    #[test]
    fn symlink_in_middle_of_path() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/real/dir", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/real/dir/f", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "/real", "/alias", &ROOT).unwrap();
        assert!(v.stat(v.root(), "/alias/dir/f", true, &ROOT).unwrap().is_file());
    }

    #[test]
    fn dangling_symlink() {
        let mut v = fs();
        v.symlink(v.root(), "/nowhere", "/dangle", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/dangle", true, &ROOT), Err(Errno::ENOENT));
        assert!(v.stat(v.root(), "/dangle", false, &ROOT).unwrap().is_symlink());
    }

    #[test]
    fn hard_link_shares_inode() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"data").unwrap();
        v.link(v.root(), "/f", "/g", &ROOT).unwrap();
        let sf = v.stat(v.root(), "/f", true, &ROOT).unwrap();
        let sg = v.stat(v.root(), "/g", true, &ROOT).unwrap();
        assert_eq!(sf.ino, sg.ino);
        assert_eq!(sf.nlink, 2);
        v.unlink(v.root(), "/f", &ROOT).unwrap();
        let sg = v.stat(v.root(), "/g", true, &ROOT).unwrap();
        assert_eq!(sg.nlink, 1);
        assert_eq!(v.read_file(v.root(), "/g", &ROOT).unwrap(), b"data");
    }

    #[test]
    fn hard_link_to_dir_refused() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.link(v.root(), "/d", "/d2", &ROOT), Err(Errno::EPERM));
    }

    #[test]
    fn unlink_while_pinned_keeps_data() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"still here").unwrap();
        v.pin(ino).unwrap();
        v.unlink(v.root(), "/f", &ROOT).unwrap();
        // Name is gone but data is readable through the pin.
        assert_eq!(v.stat(v.root(), "/f", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.file_data(ino).unwrap(), b"still here");
        v.unpin(ino).unwrap();
        assert_eq!(v.file_data(ino), Err(Errno::ENOENT));
    }

    #[test]
    fn rmdir_semantics() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/d/sub", 0o755, &ROOT).unwrap();
        assert_eq!(v.rmdir(v.root(), "/d", &ROOT), Err(Errno::ENOTEMPTY));
        v.rmdir(v.root(), "/d/sub", &ROOT).unwrap();
        v.rmdir(v.root(), "/d", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/d", true, &ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn unlink_dir_is_eisdir() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.unlink(v.root(), "/d", &ROOT), Err(Errno::EISDIR));
    }

    #[test]
    fn rename_file() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"x").unwrap();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.rename(v.root(), "/f", "/d/g", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/f", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.read_file(v.root(), "/d/g", &ROOT).unwrap(), b"x");
    }

    #[test]
    fn rename_replaces_file() {
        let mut v = fs();
        v.write_file(v.root(), "/a", b"aaa", &ROOT).unwrap();
        v.write_file(v.root(), "/b", b"bbb", &ROOT).unwrap();
        v.rename(v.root(), "/a", "/b", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/b", &ROOT).unwrap(), b"aaa");
    }

    #[test]
    fn rename_dir_updates_dotdot() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/x/inner", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/y", 0o755, &ROOT).unwrap();
        v.rename(v.root(), "/x/inner", "/y/inner", &ROOT).unwrap();
        let y = v.resolve(v.root(), "/y", true, &ROOT).unwrap();
        let via_dotdot = v.resolve(v.root(), "/y/inner/..", true, &ROOT).unwrap();
        assert_eq!(via_dotdot, y);
    }

    #[test]
    fn rename_into_own_subtree_refused() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/d/sub", 0o755, &ROOT).unwrap();
        assert_eq!(
            v.rename(v.root(), "/d", "/d/sub/d2", &ROOT),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn readdir_lists_dot_entries() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/d/f", 0o644, &ROOT).unwrap();
        let names: Vec<_> = v
            .readdir(v.root(), "/d", &ROOT)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, [".", "..", "f"]);
    }

    #[test]
    fn chmod_chown_rules() {
        let mut v = fs();
        let alice = Cred::new(100, 100);
        let bob = Cred::new(200, 200);
        v.mkdir(v.root(), "/pub", 0o777, &ROOT).unwrap();
        v.create(v.root(), "/pub/f", 0o644, &alice).unwrap();
        // Non-owner cannot chmod.
        assert_eq!(v.chmod(v.root(), "/pub/f", 0o600, &bob), Err(Errno::EPERM));
        v.chmod(v.root(), "/pub/f", 0o600, &alice).unwrap();
        assert_eq!(v.stat(v.root(), "/pub/f", true, &ROOT).unwrap().mode, 0o600);
        // Non-root cannot chown to another uid.
        assert_eq!(
            v.chown(v.root(), "/pub/f", 200, 200, &alice),
            Err(Errno::EPERM)
        );
        v.chown(v.root(), "/pub/f", 200, 200, &ROOT).unwrap();
    }

    #[test]
    fn nlink_accounting_for_dirs() {
        let mut v = fs();
        let d = v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 2);
        v.mkdir(v.root(), "/d/s1", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/d/s2", 0o755, &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 4);
        v.rmdir(v.root(), "/d/s1", &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 3);
    }

    #[test]
    fn inode_recycling() {
        let mut v = fs();
        let before = v.live_inodes();
        let ino = v.create(v.root(), "/tmp1", 0o644, &ROOT).unwrap();
        v.unlink(v.root(), "/tmp1", &ROOT).unwrap();
        assert_eq!(v.live_inodes(), before);
        let ino2 = v.create(v.root(), "/tmp2", 0o644, &ROOT).unwrap();
        assert_eq!(ino, ino2, "freed inode number should be recycled");
    }

    #[test]
    fn resolve_entry_follows_final_symlink_to_real_dir() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/private", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/private/real", 0o644, &ROOT).unwrap();
        v.mkdir(v.root(), "/public", 0o755, &ROOT).unwrap();
        v.symlink(v.root(), "/private/real", "/public/alias", &ROOT)
            .unwrap();
        let (dir, name, ino) = v
            .resolve_entry(v.root(), "/public/alias", &ROOT)
            .unwrap();
        let private = v.resolve(v.root(), "/private", true, &ROOT).unwrap();
        assert_eq!(dir, private, "must land in the target's directory");
        assert_eq!(name, "real");
        assert!(ino.is_some());
    }

    #[test]
    fn resolve_entry_missing_final() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        let (dir, name, ino) = v.resolve_entry(v.root(), "/d/newfile", &ROOT).unwrap();
        assert_eq!(dir, v.resolve(v.root(), "/d", true, &ROOT).unwrap());
        assert_eq!(name, "newfile");
        assert!(ino.is_none());
    }

    #[test]
    fn resolve_entry_dangling_symlink_points_at_creation_site() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.symlink(v.root(), "/d/missing", "/lnk", &ROOT).unwrap();
        let (dir, name, ino) = v.resolve_entry(v.root(), "/lnk", &ROOT).unwrap();
        assert_eq!(dir, v.resolve(v.root(), "/d", true, &ROOT).unwrap());
        assert_eq!(name, "missing");
        assert!(ino.is_none());
    }

    #[test]
    fn path_too_long() {
        let v = fs();
        let long = format!("/{}", "a".repeat(5000));
        assert_eq!(
            v.resolve(v.root(), &long, true, &ROOT),
            Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn name_too_long() {
        let mut v = fs();
        let name = format!("/{}", "a".repeat(300));
        assert_eq!(
            v.create(v.root(), &name, 0o644, &ROOT),
            Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn write_file_overwrites() {
        let mut v = fs();
        v.write_file(v.root(), "/f", b"first", &ROOT).unwrap();
        v.write_file(v.root(), "/f", b"2nd", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/f", &ROOT).unwrap(), b"2nd");
    }

    #[test]
    fn times_advance() {
        let mut v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        let t0 = v.fstat(ino).unwrap().mtime;
        v.write_at(ino, 0, b"x").unwrap();
        let t1 = v.fstat(ino).unwrap().mtime;
        assert!(t1 > t0);
    }

    #[test]
    fn dentry_cache_hits_on_repeat_resolution() {
        let mut v = fs();
        v.mkdir_all(v.root(), "/a/b", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/a/b/f", 0o644, &ROOT).unwrap();
        let (h0, _) = v.dentry_stats();
        v.resolve(v.root(), "/a/b/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/a/b/f", true, &ROOT).unwrap();
        let (h1, _) = v.dentry_stats();
        assert!(h1 > h0, "second walk must hit the cache ({h0} -> {h1})");
    }

    #[test]
    fn every_mutation_bumps_the_generation() {
        let mut v = fs();
        let mut last = v.change_generation();
        let mut expect_bump = |v: &Vfs, what: &str| {
            let g = v.change_generation();
            assert!(g > last, "{what} must bump the generation");
            last = g;
        };
        let f = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        expect_bump(&v, "create");
        v.write_at(f, 0, b"x").unwrap();
        expect_bump(&v, "write_at");
        v.truncate(f, 0).unwrap();
        expect_bump(&v, "truncate");
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        expect_bump(&v, "mkdir");
        v.link(v.root(), "/f", "/g", &ROOT).unwrap();
        expect_bump(&v, "link");
        v.symlink(v.root(), "/f", "/l", &ROOT).unwrap();
        expect_bump(&v, "symlink");
        v.rename(v.root(), "/g", "/h", &ROOT).unwrap();
        expect_bump(&v, "rename");
        v.chmod(v.root(), "/f", 0o600, &ROOT).unwrap();
        expect_bump(&v, "chmod");
        v.chown(v.root(), "/f", 1, 1, &ROOT).unwrap();
        expect_bump(&v, "chown");
        v.unlink(v.root(), "/h", &ROOT).unwrap();
        expect_bump(&v, "unlink");
        v.rmdir(v.root(), "/d", &ROOT).unwrap();
        expect_bump(&v, "rmdir");
    }

    #[test]
    fn cached_resolution_sees_rename_immediately() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.write_file(v.root(), "/d/a", b"1", &ROOT).unwrap();
        // Warm the cache on both the hit and the miss.
        assert!(v.resolve(v.root(), "/d/a", true, &ROOT).is_ok());
        assert_eq!(v.resolve(v.root(), "/d/b", true, &ROOT), Err(Errno::ENOENT));
        v.rename(v.root(), "/d/a", "/d/b", &ROOT).unwrap();
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.read_file(v.root(), "/d/b", &ROOT).unwrap(), b"1");
    }

    #[test]
    fn negative_entry_invalidated_by_create() {
        let mut v = fs();
        assert_eq!(v.resolve(v.root(), "/new", true, &ROOT), Err(Errno::ENOENT));
        v.write_file(v.root(), "/new", b"now", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/new", &ROOT).unwrap(), b"now");
    }

    #[test]
    fn stale_entry_never_served_across_inode_recycle() {
        let mut v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        let a = v.create(v.root(), "/d/a", 0o644, &ROOT).unwrap();
        // Cache "/d/a" -> a.
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT).unwrap(), a);
        v.unlink(v.root(), "/d/a", &ROOT).unwrap();
        // The recycled inode now lives under a different name.
        let b = v.create(v.root(), "/d/b", 0o644, &ROOT).unwrap();
        assert_eq!(a, b, "inode must be recycled for this test to bite");
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn disabled_cache_records_no_hits() {
        let mut v = fs();
        v.set_dentry_cache(false);
        v.write_file(v.root(), "/f", b"x", &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        assert_eq!(v.dentry_stats(), (0, 0));
    }

    #[test]
    fn cloned_vfs_starts_with_cold_cache() {
        let mut v = fs();
        v.write_file(v.root(), "/f", b"x", &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        let c = v.clone();
        assert_eq!(c.dentry_stats(), (0, 0));
        assert_eq!(c.change_generation(), v.change_generation());
        assert_eq!(c.read_file(c.root(), "/f", &ROOT).unwrap(), b"x");
    }

    #[test]
    fn dentry_cache_stays_bounded() {
        let mut v = fs();
        for i in 0..DENTRY_CACHE_CAP + 64 {
            v.write_file(v.root(), &format!("/f{i}"), b"", &ROOT).unwrap();
        }
        for i in 0..DENTRY_CACHE_CAP + 64 {
            v.resolve(v.root(), &format!("/f{i}"), true, &ROOT).unwrap();
        }
        let map = v.dcache.map.read();
        assert!(map.len <= DENTRY_CACHE_CAP);
        let total: usize = map.by_dir.values().map(|m| m.len()).sum();
        assert_eq!(total, map.len, "len accounting must match the map");
    }
}
