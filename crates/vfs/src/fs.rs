//! The filesystem proper.
//!
//! The inode space is *sharded*: inodes are distributed over a fixed set
//! of independently locked shards (`shard = ino % N`), so operations on
//! unrelated files never contend. Every operation takes `&self`; the
//! shard locks below, not an exclusive borrow of the whole filesystem,
//! provide mutual exclusion. Mutating operations follow a uniform
//! two-phase pattern:
//!
//! 1. **Phase 1 (no locks held):** resolve paths and run every check in
//!    the same order as the original single-lock implementation, using
//!    transient per-shard read locks. Errors produced here are
//!    authoritative.
//! 2. **Phase 2 (shard write locks, ascending):** lock the affected
//!    shard(s), re-validate exactly the predicates phase 1 established,
//!    and apply the mutation. If anything changed in between, drop the
//!    locks and retry from phase 1.
//!
//! Single-threaded, re-validation can never fail, so the observable
//! behaviour (results, errnos, timestamps, inode-number allocation
//! order) is identical to the single-lock implementation — the
//! equivalence property suite in the kernel crate checks this against
//! generated operation sequences.
//!
//! Two invariants make the short re-validation sound:
//!
//! * **Kind stability:** a live inode (reachable from any directory
//!   entry, hence `nlink >= 1`) never changes kind. A phase-1 kind check
//!   survives to phase 2 as long as the *entry identity* (`name -> ino`)
//!   still holds — unless the inode was freed and its number recycled,
//!   which phase 2 re-checks explicitly.
//! * **Deferred frees:** inode storage is freed only when `nlink == 0`
//!   and no pins remain, so an inode referenced by a directory entry (or
//!   an owed link-count decrement) cannot vanish mid-operation.
//!
//! Lock ordering follows the `ShardSet` discipline: one shard → one
//! lock; multiple shards → ascending index via the batch helpers; the
//! inode-number allocator is a leaf mutex that may be taken under shard
//! locks but never the reverse; and `rename` additionally serializes
//! against other renames with an outermost mutex so its ancestry check
//! (`is_same_or_ancestor`) stays stable while it works. The write-ahead
//! log's internal mutex (see [`crate::wal`]) is a further leaf below
//! the shard locks: phase 2 appends its redo record while still holding
//! the shard write locks, which is what makes the single global log
//! order a valid serialization of the sharded execution.

use crate::extent::{FileContent, DEFAULT_CHUNK_SIZE, MAX_CHUNK_SIZE, MIN_CHUNK_SIZE};
use crate::inode::{Inode, Payload};
use crate::path::{self, NAME_MAX, PATH_MAX};
use crate::wal::{self, Wal, WalRecord, WalRecordRef};
use crate::{Access, ExtentList, FileKind, Ino, StatBuf};
use idbox_types::{Errno, SysResult};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard, ShardSet};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Credentials used for Unix permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cred {
    /// User id. Uid 0 is the superuser and bypasses permission checks.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
}

impl Cred {
    /// The superuser.
    pub const ROOT: Cred = Cred { uid: 0, gid: 0 };

    /// An ordinary credential.
    pub fn new(uid: u32, gid: u32) -> Self {
        Cred { uid, gid }
    }
}

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (`.` and `..` included, as in a real kernel).
    pub name: String,
    /// Inode the entry refers to.
    pub ino: Ino,
    /// Kind of the referenced inode.
    pub kind: FileKind,
}

/// Maximum symlink traversals in one resolution (Linux uses 40).
const SYMLOOP_MAX: u32 = 40;

/// Bound on cached dentries across the whole filesystem; each shard's
/// cache gets an equal slice (at least 64 entries). On overflow a
/// shard's cache is dropped and rebuilt — stale-generation leftovers go
/// with it, so no per-shard map grows past its slice.
const DENTRY_CACHE_CAP: usize = 8192;

/// Default shard count, overridable via `IDBOX_VFS_SHARDS` (clamped to
/// 1..=1024). Read once; every `Vfs::new` in the process sees the same
/// value.
fn default_shard_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("IDBOX_VFS_SHARDS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(16, |n| n.clamp(1, 1024))
    })
}

/// Default file chunk size, overridable via `IDBOX_VFS_CHUNK_KIB`
/// (clamped to 1..=16384 KiB). Read once; every `Vfs::new` in the
/// process sees the same value. Tests and benches that need a
/// different granularity use [`Vfs::set_chunk_size`] instead.
fn default_chunk_size() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("IDBOX_VFS_CHUNK_KIB")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(DEFAULT_CHUNK_SIZE, |kib| {
                (kib * 1024).clamp(MIN_CHUNK_SIZE, MAX_CHUNK_SIZE)
            })
    })
}

/// A bounded positive+negative directory-entry cache for one shard.
///
/// One entry memoizes `entries(dir).get(name)`: the inode a name binds
/// to in a directory, or the fact that the name is absent (`None`, a
/// negative entry). Every entry is stamped with the shard's change
/// generation, captured by the caller *while holding the shard's read
/// lock*, and honoured only while that generation is still current.
/// Writers mutate directory entries and bump the generation while
/// holding the shard's write lock, so a captured stamp is consistent
/// with the entries it was read from: any entry inserted with a stamp
/// that a concurrent writer overtook is simply never served. Only the
/// map lookup itself is short-circuited; directory-kind checks,
/// permission checks, and symlink traversal still run on every
/// resolution, which is what keeps the cached walk provably identical
/// to the uncached one (property tested in `tests/props.rs`).
///
/// Unlike the old whole-filesystem cache, content writes (`write_at`,
/// `truncate`) and metadata changes (`chmod`, `chown`) do not
/// invalidate dentries: name → inode bindings are credential- and
/// content-independent, and permission checks always re-run against
/// live inode metadata.
#[derive(Debug)]
struct DentryCache {
    /// Per-shard change generation: bumped (under the shard's write
    /// lock) by every operation that changes directory entries in this
    /// shard or frees one of its inodes.
    generation: AtomicU64,
    /// Entry bound for this shard's map.
    cap: usize,
    map: RwLock<DentryMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct DentryMap {
    by_dir: HashMap<Ino, HashMap<String, (u64, Option<Ino>)>>,
    len: usize,
}

impl DentryCache {
    fn new(cap: usize) -> Self {
        DentryCache {
            generation: AtomicU64::new(0),
            cap,
            map: RwLock::new(DentryMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Invalidate every cached entry by advancing the generation. Called
    /// while holding the owning shard's write lock, which orders the
    /// bump against concurrent readers' generation captures.
    fn bump(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Cached lookup; `None` means "not cached", `Some(slot)` is the
    /// memoized answer (which may itself be a negative `None`).
    fn lookup(&self, dir: Ino, name: &str) -> Option<Option<Ino>> {
        let gen = self.generation();
        let hit = self
            .map
            .read()
            .by_dir
            .get(&dir)
            .and_then(|m| m.get(name))
            .and_then(|&(g, slot)| (g == gen).then_some(slot));
        match hit {
            Some(slot) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(slot)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a memoized answer stamped with `gen` — the generation the
    /// caller captured under the shard read lock when it read the
    /// directory. Inserting with an overtaken stamp is harmless: the
    /// entry is never served.
    fn insert(&self, dir: Ino, name: &str, slot: Option<Ino>, gen: u64) {
        let mut map = self.map.write();
        if map.len >= self.cap {
            map.by_dir.clear();
            map.len = 0;
        }
        let prev = map
            .by_dir
            .entry(dir)
            .or_default()
            .insert(name.to_string(), (gen, slot));
        if prev.is_none() {
            map.len += 1;
        }
    }

    fn clear(&self) {
        let mut map = self.map.write();
        map.by_dir.clear();
        map.len = 0;
    }

    fn len(&self) -> usize {
        self.map.read().len
    }
}

/// A clone starts cold: the cache is a pure accelerator, so a cloned
/// filesystem gets a fresh one (same generation, no entries).
impl Clone for DentryCache {
    fn clone(&self) -> Self {
        DentryCache {
            generation: AtomicU64::new(self.generation()),
            cap: self.cap,
            map: RwLock::new(DentryMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// An errno-injection hook for fault testing: called once per data
/// operation with the operation name (`"read"` / `"write"`) and the
/// target inode; returning `Some(errno)` fails that operation instead
/// of performing it. Installed via [`Vfs::set_fault_hook`]; production
/// filesystems never carry one. The robustness suite drives it from a
/// seeded `FaultPlan` so "the disk returned EIO" is reproducible.
#[derive(Clone)]
pub struct FaultHook(Arc<dyn Fn(&'static str, Ino) -> Option<Errno> + Send + Sync>);

impl FaultHook {
    /// Wrap an injection function.
    pub fn new(f: impl Fn(&'static str, Ino) -> Option<Errno> + Send + Sync + 'static) -> Self {
        FaultHook(Arc::new(f))
    }

    fn check(&self, op: &'static str, ino: Ino) -> SysResult<()> {
        match (self.0)(op, ino) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FaultHook(..)")
    }
}

/// One shard's inodes, keyed by raw inode number.
type ShardMap = HashMap<u64, Inode>;

/// Inode-number allocator state, behind a leaf mutex.
#[derive(Debug, Clone)]
struct AllocState {
    /// Next never-used inode number (the root is 1, so files start at 2).
    next: u64,
    /// Freed numbers, reused LIFO — the same allocation order the
    /// single-lock implementation had (`inode_recycling` relies on it).
    free: Vec<u64>,
}

/// Write guards for one or two shards, addressable by shard index.
/// Acquired through `ShardSet::write_pair`, so the underlying locks are
/// always taken in ascending order.
struct PairGuard<'a> {
    sa: usize,
    ga: RwLockWriteGuard<'a, ShardMap>,
    gb: Option<RwLockWriteGuard<'a, ShardMap>>,
}

impl<'a> PairGuard<'a> {
    fn lock(shards: &'a ShardSet<ShardMap>, sa: usize, sb: usize) -> Self {
        let (ga, gb) = shards.write_pair(sa, sb);
        PairGuard { sa, ga, gb }
    }

    fn map(&mut self, s: usize) -> &mut ShardMap {
        if s == self.sa {
            &mut self.ga
        } else {
            self.gb
                .as_deref_mut()
                .expect("shard index not locked by this pair")
        }
    }

    fn map_ref(&self, s: usize) -> &ShardMap {
        if s == self.sa {
            &self.ga
        } else {
            self.gb
                .as_deref()
                .expect("shard index not locked by this pair")
        }
    }
}

/// The in-memory filesystem.
///
/// All operations take a *start directory* (the caller's cwd) and a path;
/// absolute paths ignore the start. Permission checks follow Unix rules
/// against the supplied [`Cred`]; uid 0 bypasses them.
///
/// Internally the inode space is sharded (see the module docs): all
/// operations, including mutations, take `&self` and synchronize on
/// per-shard locks, so callers touching disjoint files proceed in
/// parallel.
pub struct Vfs {
    /// Inodes, distributed by `ino % shard_count`.
    shards: ShardSet<ShardMap>,
    /// One dentry cache per shard, parallel to `shards`; the cache at
    /// index `i` holds entries for directories living in shard `i`.
    dcaches: Box<[DentryCache]>,
    /// Inode-number allocator. Leaf lock: may be taken while holding
    /// shard write locks, never the other way around.
    alloc: Mutex<AllocState>,
    /// Logical clock; every mutation advances it by one.
    clock: AtomicU64,
    /// Global change generation for caches *outside* the vfs (the
    /// identity box's ACL caches); bumped by every mutation.
    change_gen: AtomicU64,
    root: Ino,
    /// Outermost lock taken only by `rename`, keeping its ancestry walk
    /// stable against concurrent renames. Ordered before all shard
    /// locks.
    rename_lock: Mutex<()>,
    dcache_enabled: bool,
    fault_hook: Option<FaultHook>,
    /// Nominal chunk size for files created after this point (existing
    /// files keep the chunk size they were created with).
    chunk_size: usize,
    /// Durability: when attached, every phase-2 mutation appends its
    /// redo record here before releasing the shard locks. `None` (the
    /// default) is the pure in-memory filesystem.
    wal: Option<Arc<Wal>>,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Vfs({} shards, root {})", self.shards.len(), self.root)
    }
}

/// A clone takes a consistent snapshot: every shard read lock
/// (ascending) plus the allocator, so no mutation interleaves mid-copy.
/// The dentry caches come back cold (same generations, no entries).
impl Clone for Vfs {
    fn clone(&self) -> Self {
        let guards = self.shards.read_all();
        let alloc = self.alloc.lock();
        let mut maps: Vec<ShardMap> = guards.iter().map(|g| (**g).clone()).collect();
        let shards = ShardSet::from_fn_named("vfs", maps.len(), |i| std::mem::take(&mut maps[i]));
        Vfs {
            shards,
            dcaches: self
                .dcaches
                .iter()
                .map(DentryCache::clone)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            alloc: Mutex::new(alloc.clone()),
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            change_gen: AtomicU64::new(self.change_gen.load(Ordering::Relaxed)),
            root: self.root,
            rename_lock: Mutex::new(()),
            dcache_enabled: self.dcache_enabled,
            fault_hook: self.fault_hook.clone(),
            chunk_size: self.chunk_size,
            // A clone is a divergent fork (equivalence twins, tests);
            // logging its mutations into the original's WAL would
            // corrupt replay, so forks start without one.
            wal: None,
        }
    }
}

impl Vfs {
    /// A fresh filesystem containing only a root directory owned by root
    /// with mode `0o755`, with the default shard count (overridable via
    /// the `IDBOX_VFS_SHARDS` environment variable).
    pub fn new() -> Self {
        Vfs::with_shards(default_shard_count())
    }

    /// A fresh filesystem with an explicit shard count (clamped to
    /// 1..=1024). A count of 1 degenerates to the old single-lock
    /// behaviour and is what the equivalence suite compares against.
    pub fn with_shards(n: usize) -> Self {
        let n = n.clamp(1, 1024);
        let vfs = Vfs {
            shards: ShardSet::from_fn_named("vfs", n, |_| ShardMap::new()),
            dcaches: (0..n)
                .map(|_| DentryCache::new((DENTRY_CACHE_CAP / n).max(64)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            alloc: Mutex::new(AllocState {
                next: 2,
                free: Vec::new(),
            }),
            clock: AtomicU64::new(0),
            change_gen: AtomicU64::new(0),
            root: Ino(1),
            rename_lock: Mutex::new(()),
            dcache_enabled: true,
            fault_hook: None,
            chunk_size: default_chunk_size(),
            wal: None,
        };
        let mut entries = BTreeMap::new();
        entries.insert(".".to_string(), Ino(1));
        entries.insert("..".to_string(), Ino(1));
        let si = vfs.shards.shard_of(1);
        vfs.shards.write(si).insert(
            1,
            Inode {
                payload: Payload::Dir(entries),
                mode: 0o755,
                uid: 0,
                gid: 0,
                nlink: 2,
                pins: 0,
                atime: 0,
                mtime: 0,
                ctime: 0,
            },
        );
        vfs
    }

    /// The root directory.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Number of inode shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Advance and return the logical clock. Every mutating operation
    /// passes through here, so this is also where the global change
    /// generation is bumped: after any write — namespace or content —
    /// every generation-keyed cache outside the vfs is stale. The
    /// per-shard dentry caches are *not* invalidated here; namespace
    /// mutations bump their own shard's cache under that shard's write
    /// lock, and content writes leave dentries alone (they cannot change
    /// a name → inode binding).
    fn tick(&self) -> u64 {
        self.change_gen.fetch_add(1, Ordering::Relaxed);
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The filesystem change generation: a counter bumped by every
    /// mutating operation. Caches keyed by `(generation, ...)` — the
    /// identity box's ACL caches above — are automatically invalidated
    /// by any change that could affect them.
    pub fn change_generation(&self) -> u64 {
        self.change_gen.load(Ordering::Relaxed)
    }

    /// Dentry-cache counters: `(hits, misses)` since creation, summed
    /// over every shard.
    pub fn dentry_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for c in &*self.dcaches {
            hits += c.hits.load(Ordering::Relaxed);
            misses += c.misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    }

    /// Total number of cached dentries across all shards (for tests and
    /// invariant checks).
    pub fn dcache_len(&self) -> usize {
        self.dcaches.iter().map(DentryCache::len).sum()
    }

    /// Enable or disable the dentry cache (on by default; the ablation
    /// benches turn it off to measure the uncached walk). Disabling
    /// drops all cached entries.
    pub fn set_dentry_cache(&mut self, enabled: bool) {
        self.dcache_enabled = enabled;
        if !enabled {
            for c in &*self.dcaches {
                c.clear();
            }
        }
    }

    /// Install (or clear, with `None`) the errno-injection hook consulted
    /// by data operations ([`Vfs::read_into`], [`Vfs::write_at`]).
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// Attach a write-ahead log: from this point every mutating
    /// operation appends its redo record before releasing the shard
    /// locks that applied it. Attach the log *before* populating the
    /// filesystem (or right after restoring a recovered one), so the
    /// log plus its snapshot always cover the full namespace.
    pub fn set_wal(&mut self, wal: Option<Arc<Wal>>) {
        self.wal = wal;
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Append one redo record when a WAL is attached. Callers hold the
    /// shard write locks that applied the mutation; the WAL's internal
    /// mutex is a leaf below them (see the module docs), so the global
    /// append order is a valid serialization of the sharded execution.
    #[inline]
    fn log<'a>(&self, rec: impl FnOnce() -> WalRecordRef<'a>) {
        if let Some(wal) = &self.wal {
            wal.append(rec());
        }
    }

    /// The nominal chunk size new files are created with.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Override the chunk size for files created after this call
    /// (clamped to 512 B ..= 16 MiB). Existing files keep the chunk
    /// size they were created with; tests use small chunks to force
    /// boundary crossings, benches sweep granularities.
    pub fn set_chunk_size(&mut self, bytes: usize) {
        self.chunk_size = bytes.clamp(MIN_CHUNK_SIZE, MAX_CHUNK_SIZE);
    }

    /// Number of live inodes (for tests and invariant checks).
    pub fn live_inodes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shards.read(i).len())
            .sum()
    }

    // ------------------------------------------------------------------
    // Inode plumbing
    // ------------------------------------------------------------------

    /// Run `f` against the inode under its shard's read lock. The caller
    /// must not already hold that shard's lock.
    fn with_inode<R>(&self, ino: Ino, f: impl FnOnce(&Inode) -> R) -> SysResult<R> {
        let g = self.shards.read(self.shards.shard_of(ino.0));
        g.get(&ino.0).map(f).ok_or(Errno::ENOENT)
    }

    /// [`Vfs::with_inode`] for closures that themselves return a result.
    fn try_with_inode<R>(&self, ino: Ino, f: impl FnOnce(&Inode) -> SysResult<R>) -> SysResult<R> {
        self.with_inode(ino, f).and_then(|r| r)
    }

    fn kind(&self, ino: Ino) -> SysResult<FileKind> {
        self.with_inode(ino, |i| i.payload.kind())
    }

    /// The symlink target, or `None` when the inode is not a symlink.
    fn symlink_target(&self, ino: Ino) -> SysResult<Option<String>> {
        self.with_inode(ino, |i| match &i.payload {
            Payload::Symlink(t) => Some(t.clone()),
            _ => None,
        })
    }

    /// Uncached directory-entry probe: `entries(dir).get(name)`.
    fn entry_get(&self, dir: Ino, name: &str) -> SysResult<Option<Ino>> {
        self.try_with_inode(dir, |i| match &i.payload {
            Payload::Dir(e) => Ok(e.get(name).copied()),
            _ => Err(Errno::ENOTDIR),
        })
    }

    /// Does the directory hold any entry besides `.` and `..`?
    fn dir_has_real_entries(&self, dir: Ino) -> SysResult<bool> {
        self.try_with_inode(dir, |i| match &i.payload {
            Payload::Dir(e) => Ok(e.keys().any(|k| k != "." && k != "..")),
            _ => Err(Errno::ENOTDIR),
        })
    }

    /// Reserve an inode number. The number is not visible anywhere until
    /// the caller installs an inode under it; on failure the caller must
    /// return it via [`Vfs::unreserve_ino`].
    fn reserve_ino(&self) -> Ino {
        let mut a = self.alloc.lock();
        match a.free.pop() {
            Some(n) => Ino(n),
            None => {
                let n = a.next;
                a.next += 1;
                Ino(n)
            }
        }
    }

    /// Return a reserved-but-unused inode number to the free list.
    fn unreserve_ino(&self, ino: Ino) {
        self.alloc.lock().free.push(ino.0);
    }

    /// Free the inode's storage if it has no links and no pins. Runs
    /// under the shard's write lock (`map` is that shard's map); bumps
    /// the shard's dentry generation on an actual free so no stale
    /// dentry can survive the number being recycled.
    fn maybe_free_locked(&self, si: usize, map: &mut ShardMap, ino: Ino) {
        if let Some(inode) = map.get(&ino.0) {
            if inode.nlink == 0 && inode.pins == 0 {
                map.remove(&ino.0);
                self.alloc.lock().free.push(ino.0);
                self.dcaches[si].bump();
            }
        }
    }

    /// Pin an inode (an open file descriptor references it); pinned
    /// inodes survive `unlink` until unpinned.
    pub fn pin(&self, ino: Ino) -> SysResult<()> {
        let si = self.shards.shard_of(ino.0);
        let mut g = self.shards.write(si);
        g.get_mut(&ino.0).ok_or(Errno::ENOENT)?.pins += 1;
        Ok(())
    }

    /// Drop a pin; frees the inode if it is fully unlinked.
    pub fn unpin(&self, ino: Ino) -> SysResult<()> {
        let si = self.shards.shard_of(ino.0);
        let mut g = self.shards.write(si);
        let inode = g.get_mut(&ino.0).ok_or(Errno::ENOENT)?;
        inode.pins = inode.pins.saturating_sub(1);
        self.maybe_free_locked(si, &mut g, ino);
        Ok(())
    }

    /// One directory-entry lookup, through the dentry cache: exactly
    /// `entries(dir).get(name)`, memoized. `None` means the name is
    /// absent (negative entries are cached too). The answer is
    /// credential-independent — callers perform their own kind and
    /// permission checks, cached or not.
    fn lookup_entry(&self, dir: Ino, name: &str) -> SysResult<Option<Ino>> {
        if !self.dcache_enabled {
            return self.entry_get(dir, name);
        }
        let si = self.shards.shard_of(dir.0);
        let dc = &self.dcaches[si];
        if let Some(slot) = dc.lookup(dir, name) {
            return Ok(slot);
        }
        // Miss: read the directory and capture the shard generation
        // under the same read lock, so the stamp is consistent with the
        // answer (writers bump it only under the write lock).
        let (gen, slot) = {
            let g = self.shards.read(si);
            let gen = dc.generation();
            let slot = match &g.get(&dir.0).ok_or(Errno::ENOENT)?.payload {
                Payload::Dir(e) => e.get(name).copied(),
                _ => return Err(Errno::ENOTDIR),
            };
            (gen, slot)
        };
        dc.insert(dir, name, slot, gen);
        Ok(slot)
    }

    // ------------------------------------------------------------------
    // Permission checks
    // ------------------------------------------------------------------

    /// The Unix triad check against an already-fetched inode; used both
    /// by the public [`Vfs::check_access`] and by phase-2 re-validation
    /// that already holds a shard guard.
    fn access_ok(inode: &Inode, cred: &Cred, want: Access) -> SysResult<()> {
        if cred.uid == 0 {
            return Ok(());
        }
        let triad = if cred.uid == inode.uid {
            (inode.mode >> 6) & 7
        } else if cred.gid == inode.gid {
            (inode.mode >> 3) & 7
        } else {
            inode.mode & 7
        };
        if triad as u8 & want.0 == want.0 {
            Ok(())
        } else {
            Err(Errno::EACCES)
        }
    }

    /// Unix permission check on one inode.
    pub fn check_access(&self, ino: Ino, cred: &Cred, want: Access) -> SysResult<()> {
        self.try_with_inode(ino, |i| Self::access_ok(i, cred, want))
    }

    /// Phase-2 helper: under the shard write lock, is `dir` still a
    /// directory the caller may write+search? Returns its entries.
    fn revalidate_dir<'m>(
        map: &'m ShardMap,
        dir: Ino,
        cred: &Cred,
    ) -> Option<&'m BTreeMap<String, Ino>> {
        let inode = map.get(&dir.0)?;
        if Self::access_ok(inode, cred, Access::W.and(Access::X)).is_err() {
            return None;
        }
        match &inode.payload {
            Payload::Dir(entries) => Some(entries),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    fn check_path(path: &str) -> SysResult<()> {
        if path.len() > PATH_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        Ok(())
    }

    /// Resolve a path to an inode, following symlinks (including the final
    /// component when `follow_last`). `start` is the directory for
    /// relative paths. Traversal requires search (`x`) permission on every
    /// directory walked.
    pub fn resolve(&self, start: Ino, p: &str, follow_last: bool, cred: &Cred) -> SysResult<Ino> {
        Self::check_path(p)?;
        let mut budget = SYMLOOP_MAX;
        self.resolve_inner(start, p, follow_last, cred, &mut budget)
    }

    fn resolve_inner(
        &self,
        start: Ino,
        p: &str,
        follow_last: bool,
        cred: &Cred,
        budget: &mut u32,
    ) -> SysResult<Ino> {
        let mut cur = if path::is_absolute(p) { self.root } else { start };
        // Worklist of components still to walk, in order.
        let mut work: Vec<String> = path::components(p).map(str::to_string).collect();
        let mut i = 0;
        while i < work.len() {
            let comp = work[i].clone();
            i += 1;
            if comp.len() > NAME_MAX {
                return Err(Errno::ENAMETOOLONG);
            }
            // Traversal requires the current node to be a searchable dir.
            if self.kind(cur)? != FileKind::Dir {
                return Err(Errno::ENOTDIR);
            }
            self.check_access(cur, cred, Access::X)?;
            let next = self.lookup_entry(cur, &comp)?.ok_or(Errno::ENOENT)?;
            let is_last = i == work.len();
            if let Some(target) = self.symlink_target(next)? {
                if !is_last || follow_last {
                    if *budget == 0 {
                        return Err(Errno::ELOOP);
                    }
                    *budget -= 1;
                    // Splice the target's components in place of the link.
                    let mut rest: Vec<String> =
                        path::components(&target).map(str::to_string).collect();
                    rest.extend(work.drain(i..));
                    work = rest;
                    i = 0;
                    if path::is_absolute(&target) {
                        cur = self.root;
                    }
                    continue;
                }
            }
            cur = next;
        }
        Ok(cur)
    }

    /// Resolve everything but the final component (following symlinks),
    /// returning the parent directory and the final name. Fails with
    /// `EINVAL` when the path names the root.
    pub fn resolve_parent(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<(Ino, String)> {
        Self::check_path(p)?;
        let (parent, name) = path::split_parent(p).ok_or(Errno::EINVAL)?;
        if name.len() > NAME_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        let dir = self.resolve(start, parent, true, cred)?;
        if self.kind(dir)? != FileKind::Dir {
            return Err(Errno::ENOTDIR);
        }
        Ok((dir, name.to_string()))
    }

    /// Resolve a path to the directory that *really* contains the final
    /// object, following any chain of symlinks on the final component.
    ///
    /// This is the primitive the identity box uses against the "indirect
    /// paths" pitfall: the ACL consulted must be the one in the directory
    /// where the target actually lives, not where the link does. Returns
    /// `(containing_dir, entry_name, Some(target_ino))`, or `None` as the
    /// third element when the entry does not exist (creation case).
    pub fn resolve_entry(
        &self,
        start: Ino,
        p: &str,
        cred: &Cred,
    ) -> SysResult<(Ino, String, Option<Ino>)> {
        Self::check_path(p)?;
        let mut budget = SYMLOOP_MAX;
        let mut cur_start = start;
        let mut cur_path = p.to_string();
        loop {
            let (dir, name) = self.resolve_parent(cur_start, &cur_path, cred)?;
            // Looking up the final entry is a search of `dir`: the caller
            // needs execute permission on it, same as mid-path traversal.
            self.check_access(dir, cred, Access::X)?;
            if name == "." || name == ".." {
                // Resolve fully; the entry certainly exists.
                let ino = self.resolve(cur_start, &cur_path, true, cred)?;
                return Ok((dir, name, Some(ino)));
            }
            match self.lookup_entry(dir, &name)? {
                None => return Ok((dir, name, None)),
                Some(ino) => {
                    if let Some(target) = self.symlink_target(ino)? {
                        if budget == 0 {
                            return Err(Errno::ELOOP);
                        }
                        budget -= 1;
                        cur_path = target;
                        cur_start = dir;
                        continue;
                    }
                    return Ok((dir, name, Some(ino)));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // File operations
    // ------------------------------------------------------------------

    /// Create a regular file. Fails with `EEXIST` when the name is taken.
    pub fn create(&self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<Ino> {
        loop {
            let (dir, name) = self.resolve_parent(start, p, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EEXIST);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            if self.entry_get(dir, &name)?.is_some() {
                return Err(Errno::EEXIST);
            }
            let ino = self.reserve_ino();
            let sd = self.shards.shard_of(dir.0);
            let sc = self.shards.shard_of(ino.0);
            {
                let mut pair = PairGuard::lock(&self.shards, sd, sc);
                let ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                    .is_some_and(|e| !e.contains_key(&name));
                if ok {
                    let now = self.tick();
                    self.log(|| WalRecordRef::Create {
                        dir: dir.0,
                        name: &name,
                        ino: ino.0,
                        mode: mode & 0o7777,
                        uid: cred.uid,
                        gid: cred.gid,
                        now,
                    });
                    pair.map(sc).insert(
                        ino.0,
                        Inode {
                            payload: Payload::File(FileContent::new(self.chunk_size)),
                            mode: mode & 0o7777,
                            uid: cred.uid,
                            gid: cred.gid,
                            nlink: 1,
                            pins: 0,
                            atime: now,
                            mtime: now,
                            ctime: now,
                        },
                    );
                    let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                    dinode.mtime = now;
                    if let Payload::Dir(entries) = &mut dinode.payload {
                        entries.insert(name, ino);
                    }
                    self.dcaches[sd].bump();
                    return Ok(ino);
                }
            }
            self.unreserve_ino(ino);
        }
    }

    /// Read up to `out.len()` bytes at `off`; returns bytes read (0 at or
    /// past EOF).
    ///
    /// Reads are "noatime": they leave the inode untouched and take only
    /// the target's shard read lock, so concurrent readers — and writers
    /// in other shards — proceed in parallel.
    pub fn read_into(&self, ino: Ino, off: u64, out: &mut [u8]) -> SysResult<usize> {
        if let Some(hook) = &self.fault_hook {
            hook.check("read", ino)?;
        }
        let g = self.shards.read(self.shards.shard_of(ino.0));
        let inode = g.get(&ino.0).ok_or(Errno::ENOENT)?;
        let data = match &inode.payload {
            Payload::File(data) => data,
            Payload::Dir(_) => return Err(Errno::EISDIR),
            Payload::Symlink(_) => return Err(Errno::EINVAL),
        };
        Ok(data.read_into(off as usize, out))
    }

    /// A file's full contents, copied out (compat path for callers that
    /// need one contiguous buffer; the zero-copy path is
    /// [`Vfs::file_extents`]).
    pub fn file_data(&self, ino: Ino) -> SysResult<Vec<u8>> {
        self.try_with_inode(ino, |i| match &i.payload {
            Payload::File(data) => Ok(data.to_vec()),
            Payload::Dir(_) => Err(Errno::EISDIR),
            Payload::Symlink(_) => Err(Errno::EINVAL),
        })
    }

    /// Borrow `[off, off+want)` of a file (clamped to EOF) as cheap
    /// `Arc` clones of its chunks — no byte is copied, under the shard
    /// lock or after it. The returned extents are an immutable snapshot:
    /// concurrent writers copy-on-write shared chunks, so the bytes
    /// behind the `Arc`s never change while the caller streams them.
    ///
    /// Reads are "noatime", like [`Vfs::read_into`], and honour the
    /// same `"read"` fault-hook point.
    pub fn file_extents(&self, ino: Ino, off: u64, want: usize) -> SysResult<ExtentList> {
        if let Some(hook) = &self.fault_hook {
            hook.check("read", ino)?;
        }
        let g = self.shards.read(self.shards.shard_of(ino.0));
        let inode = g.get(&ino.0).ok_or(Errno::ENOENT)?;
        match &inode.payload {
            Payload::File(data) => Ok(data.extents(off as usize, want)),
            Payload::Dir(_) => Err(Errno::EISDIR),
            Payload::Symlink(_) => Err(Errno::EINVAL),
        }
    }

    /// Write `data` at `off`, growing the file (zero-filling any gap).
    /// Returns bytes written.
    pub fn write_at(&self, ino: Ino, off: u64, data: &[u8]) -> SysResult<usize> {
        if let Some(hook) = &self.fault_hook {
            hook.check("write", ino)?;
        }
        let now = self.tick();
        let mut g = self.shards.write(self.shards.shard_of(ino.0));
        let inode = g.get_mut(&ino.0).ok_or(Errno::ENOENT)?;
        let file = match &mut inode.payload {
            Payload::File(file) => file,
            Payload::Dir(_) => return Err(Errno::EISDIR),
            Payload::Symlink(_) => return Err(Errno::EINVAL),
        };
        let off = off as usize;
        off.checked_add(data.len()).ok_or(Errno::EFBIG)?;
        file.write_at(off, data);
        inode.mtime = now;
        self.log(|| WalRecordRef::Write {
            ino: ino.0,
            off: off as u64,
            data,
            now,
        });
        Ok(data.len())
    }

    /// Truncate (or extend with zeros) a file to `len`.
    pub fn truncate(&self, ino: Ino, len: u64) -> SysResult<()> {
        let now = self.tick();
        let mut g = self.shards.write(self.shards.shard_of(ino.0));
        let inode = g.get_mut(&ino.0).ok_or(Errno::ENOENT)?;
        match &mut inode.payload {
            Payload::File(file) => {
                file.resize(len as usize);
                inode.mtime = now;
                self.log(|| WalRecordRef::Truncate {
                    ino: ino.0,
                    len,
                    now,
                });
                Ok(())
            }
            Payload::Dir(_) => Err(Errno::EISDIR),
            Payload::Symlink(_) => Err(Errno::EINVAL),
        }
    }

    // ------------------------------------------------------------------
    // Directory operations
    // ------------------------------------------------------------------

    /// Create a directory.
    pub fn mkdir(&self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<Ino> {
        loop {
            let (dir, name) = self.resolve_parent(start, p, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EEXIST);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            if self.entry_get(dir, &name)?.is_some() {
                return Err(Errno::EEXIST);
            }
            let ino = self.reserve_ino();
            let sd = self.shards.shard_of(dir.0);
            let sc = self.shards.shard_of(ino.0);
            {
                let mut pair = PairGuard::lock(&self.shards, sd, sc);
                let ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                    .is_some_and(|e| !e.contains_key(&name));
                if ok {
                    let now = self.tick();
                    self.log(|| WalRecordRef::Mkdir {
                        dir: dir.0,
                        name: &name,
                        ino: ino.0,
                        mode: mode & 0o7777,
                        uid: cred.uid,
                        gid: cred.gid,
                        now,
                    });
                    let mut entries = BTreeMap::new();
                    entries.insert(".".to_string(), ino);
                    entries.insert("..".to_string(), dir);
                    pair.map(sc).insert(
                        ino.0,
                        Inode {
                            payload: Payload::Dir(entries),
                            mode: mode & 0o7777,
                            uid: cred.uid,
                            gid: cred.gid,
                            nlink: 2,
                            pins: 0,
                            atime: now,
                            mtime: now,
                            ctime: now,
                        },
                    );
                    let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                    dinode.nlink += 1; // the new child's ".."
                    dinode.mtime = now;
                    if let Payload::Dir(entries) = &mut dinode.payload {
                        entries.insert(name, ino);
                    }
                    self.dcaches[sd].bump();
                    return Ok(ino);
                }
            }
            self.unreserve_ino(ino);
        }
    }

    /// Remove an empty directory.
    pub fn rmdir(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<()> {
        loop {
            let (dir, name) = self.resolve_parent(start, p, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EINVAL);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            let target = self.entry_get(dir, &name)?.ok_or(Errno::ENOENT)?;
            if self.dir_has_real_entries(target)? {
                return Err(Errno::ENOTEMPTY);
            }
            let sd = self.shards.shard_of(dir.0);
            let st = self.shards.shard_of(target.0);
            let mut pair = PairGuard::lock(&self.shards, sd, st);
            let dir_ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                .is_some_and(|e| e.get(&name) == Some(&target));
            let tgt_ok = pair
                .map_ref(st)
                .get(&target.0)
                .is_some_and(|t| match &t.payload {
                    Payload::Dir(e) => !e.keys().any(|k| k != "." && k != ".."),
                    _ => false,
                });
            if dir_ok && tgt_ok {
                let now = self.tick();
                self.log(|| WalRecordRef::Rmdir {
                    dir: dir.0,
                    name: &name,
                    target: target.0,
                    now,
                });
                let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                if let Payload::Dir(entries) = &mut dinode.payload {
                    entries.remove(&name);
                }
                dinode.nlink -= 1;
                dinode.mtime = now;
                let t = pair.map(st).get_mut(&target.0).expect("revalidated");
                t.nlink = 0;
                self.maybe_free_locked(st, pair.map(st), target);
                self.dcaches[sd].bump();
                return Ok(());
            }
        }
    }

    /// Remove a non-directory entry. The inode survives while pinned.
    pub fn unlink(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<()> {
        loop {
            let (dir, name) = self.resolve_parent(start, p, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EINVAL);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            let target = self.entry_get(dir, &name)?.ok_or(Errno::ENOENT)?;
            if self.kind(target)? == FileKind::Dir {
                return Err(Errno::EISDIR);
            }
            let sd = self.shards.shard_of(dir.0);
            let st = self.shards.shard_of(target.0);
            let mut pair = PairGuard::lock(&self.shards, sd, st);
            let dir_ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                .is_some_and(|e| e.get(&name) == Some(&target));
            let tgt_ok = pair
                .map_ref(st)
                .get(&target.0)
                .is_some_and(|t| t.payload.kind() != FileKind::Dir);
            if dir_ok && tgt_ok {
                let now = self.tick();
                self.log(|| WalRecordRef::Unlink {
                    dir: dir.0,
                    name: &name,
                    target: target.0,
                    now,
                });
                let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                if let Payload::Dir(entries) = &mut dinode.payload {
                    entries.remove(&name);
                }
                dinode.mtime = now;
                let t = pair.map(st).get_mut(&target.0).expect("revalidated");
                t.nlink -= 1;
                t.ctime = now;
                self.maybe_free_locked(st, pair.map(st), target);
                self.dcaches[sd].bump();
                return Ok(());
            }
        }
    }

    /// Create a hard link `newp` to the object at `oldp`. Directories
    /// cannot be hard-linked.
    pub fn link(&self, start: Ino, oldp: &str, newp: &str, cred: &Cred) -> SysResult<()> {
        loop {
            let target = self.resolve(start, oldp, false, cred)?;
            if self.kind(target)? == FileKind::Dir {
                return Err(Errno::EPERM);
            }
            let (dir, name) = self.resolve_parent(start, newp, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EEXIST);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            if self.entry_get(dir, &name)?.is_some() {
                return Err(Errno::EEXIST);
            }
            let sd = self.shards.shard_of(dir.0);
            let st = self.shards.shard_of(target.0);
            let mut pair = PairGuard::lock(&self.shards, sd, st);
            let dir_ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                .is_some_and(|e| !e.contains_key(&name));
            let tgt_ok = pair
                .map_ref(st)
                .get(&target.0)
                .is_some_and(|t| t.payload.kind() != FileKind::Dir);
            if dir_ok && tgt_ok {
                let now = self.tick();
                self.log(|| WalRecordRef::Link {
                    dir: dir.0,
                    name: &name,
                    target: target.0,
                    now,
                });
                let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                dinode.mtime = now;
                if let Payload::Dir(entries) = &mut dinode.payload {
                    entries.insert(name, target);
                }
                let t = pair.map(st).get_mut(&target.0).expect("revalidated");
                t.nlink += 1;
                t.ctime = now;
                self.dcaches[sd].bump();
                return Ok(());
            }
        }
    }

    /// Create a symbolic link at `linkp` pointing to `target` (an
    /// arbitrary, possibly dangling, string).
    pub fn symlink(&self, start: Ino, target: &str, linkp: &str, cred: &Cred) -> SysResult<Ino> {
        if target.len() > PATH_MAX {
            return Err(Errno::ENAMETOOLONG);
        }
        loop {
            let (dir, name) = self.resolve_parent(start, linkp, cred)?;
            if name == "." || name == ".." {
                return Err(Errno::EEXIST);
            }
            self.check_access(dir, cred, Access::W.and(Access::X))?;
            if self.entry_get(dir, &name)?.is_some() {
                return Err(Errno::EEXIST);
            }
            let ino = self.reserve_ino();
            let sd = self.shards.shard_of(dir.0);
            let sc = self.shards.shard_of(ino.0);
            {
                let mut pair = PairGuard::lock(&self.shards, sd, sc);
                let ok = Self::revalidate_dir(pair.map_ref(sd), dir, cred)
                    .is_some_and(|e| !e.contains_key(&name));
                if ok {
                    let now = self.tick();
                    self.log(|| WalRecordRef::Symlink {
                        dir: dir.0,
                        name: &name,
                        ino: ino.0,
                        target,
                        uid: cred.uid,
                        gid: cred.gid,
                        now,
                    });
                    pair.map(sc).insert(
                        ino.0,
                        Inode {
                            payload: Payload::Symlink(target.to_string()),
                            mode: 0o777,
                            uid: cred.uid,
                            gid: cred.gid,
                            nlink: 1,
                            pins: 0,
                            atime: now,
                            mtime: now,
                            ctime: now,
                        },
                    );
                    let dinode = pair.map(sd).get_mut(&dir.0).expect("revalidated");
                    dinode.mtime = now;
                    if let Payload::Dir(entries) = &mut dinode.payload {
                        entries.insert(name, ino);
                    }
                    self.dcaches[sd].bump();
                    return Ok(ino);
                }
            }
            self.unreserve_ino(ino);
        }
    }

    /// Read a symlink's target.
    pub fn readlink(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<String> {
        let ino = self.resolve(start, p, false, cred)?;
        self.try_with_inode(ino, |i| match &i.payload {
            Payload::Symlink(target) => Ok(target.clone()),
            _ => Err(Errno::EINVAL),
        })
    }

    /// Rename `oldp` to `newp`. Replaces an existing target when the
    /// kinds are compatible (a directory target must be empty). Refuses
    /// to move a directory into its own subtree.
    ///
    /// Cross-shard: locks every involved shard (old parent, new parent,
    /// source, replaced destination) in ascending order, under an
    /// outermost rename mutex that keeps the subtree-ancestry check
    /// stable against concurrent renames (`mkdir`/`rmdir` only add or
    /// remove leaves, so they cannot reparent an existing directory).
    pub fn rename(&self, start: Ino, oldp: &str, newp: &str, cred: &Cred) -> SysResult<()> {
        let _serialized = self.rename_lock.lock();
        loop {
            let (odir, oname) = self.resolve_parent(start, oldp, cred)?;
            let (ndir, nname) = self.resolve_parent(start, newp, cred)?;
            if oname == "." || oname == ".." || nname == "." || nname == ".." {
                return Err(Errno::EINVAL);
            }
            self.check_access(odir, cred, Access::W.and(Access::X))?;
            self.check_access(ndir, cred, Access::W.and(Access::X))?;
            let src = self.entry_get(odir, &oname)?.ok_or(Errno::ENOENT)?;
            let src_is_dir = self.kind(src)? == FileKind::Dir;
            if src_is_dir && self.is_same_or_ancestor(src, ndir)? {
                return Err(Errno::EINVAL);
            }
            // Phase-1 look at the destination slot.
            let dst_slot = self.entry_get(ndir, &nname)?;
            if dst_slot == Some(src) {
                return Ok(()); // rename to itself is a no-op
            }
            let mut dst_plan: Option<(Ino, bool)> = None;
            if let Some(dst) = dst_slot {
                let dst_is_dir = self.kind(dst)? == FileKind::Dir;
                match (src_is_dir, dst_is_dir) {
                    (true, false) => return Err(Errno::ENOTDIR),
                    (false, true) => return Err(Errno::EISDIR),
                    (true, true) => {
                        if self.dir_has_real_entries(dst)? {
                            return Err(Errno::ENOTEMPTY);
                        }
                    }
                    (false, false) => {}
                }
                dst_plan = Some((dst, dst_is_dir));
            }
            // Phase 2: lock every involved shard, ascending.
            let so = self.shards.shard_of(odir.0);
            let sn = self.shards.shard_of(ndir.0);
            let ss = self.shards.shard_of(src.0);
            let mut idxs = vec![so, sn, ss];
            if let Some((dst, _)) = dst_plan {
                idxs.push(self.shards.shard_of(dst.0));
            }
            let mut mg = self.shards.write_many(&idxs);
            // Re-validate everything phase 1 concluded.
            let still_valid = (|| {
                let oe = Self::revalidate_dir(mg.get(so), odir, cred)?;
                if oe.get(&oname) != Some(&src) {
                    return None;
                }
                let ne = Self::revalidate_dir(mg.get(sn), ndir, cred)?;
                if ne.get(&nname).copied() != dst_slot {
                    return None;
                }
                let sk = mg.get(ss).get(&src.0)?.payload.kind();
                if (sk == FileKind::Dir) != src_is_dir {
                    return None;
                }
                if let Some((dst, dst_is_dir)) = dst_plan {
                    let d = mg.get(self.shards.shard_of(dst.0)).get(&dst.0)?;
                    if (d.payload.kind() == FileKind::Dir) != dst_is_dir {
                        return None;
                    }
                    if let Payload::Dir(e) = &d.payload {
                        if e.keys().any(|k| k != "." && k != "..") {
                            return None;
                        }
                    }
                }
                Some(())
            })();
            if still_valid.is_none() {
                drop(mg);
                continue;
            }
            // Replace an existing destination. These mutations precede
            // the tick, matching the single-lock implementation.
            if let Some((dst, dst_is_dir)) = dst_plan {
                let sdst = self.shards.shard_of(dst.0);
                let nd = mg.get_mut(sn).get_mut(&ndir.0).expect("revalidated");
                if let Payload::Dir(entries) = &mut nd.payload {
                    entries.remove(&nname);
                }
                if dst_is_dir {
                    nd.nlink -= 1;
                }
                let d = mg.get_mut(sdst).get_mut(&dst.0).expect("revalidated");
                if dst_is_dir {
                    d.nlink = 0;
                } else {
                    d.nlink -= 1;
                }
                self.maybe_free_locked(sdst, mg.get_mut(sdst), dst);
                self.dcaches[sn].bump();
            }
            let now = self.tick();
            self.log(|| WalRecordRef::Rename {
                odir: odir.0,
                oname: &oname,
                ndir: ndir.0,
                nname: &nname,
                src: src.0,
                replaced: dst_plan.map_or(0, |(d, _)| d.0),
                replaced_is_dir: dst_plan.is_some_and(|(_, is_dir)| is_dir),
                src_is_dir,
                now,
            });
            let od = mg.get_mut(so).get_mut(&odir.0).expect("revalidated");
            if let Payload::Dir(entries) = &mut od.payload {
                entries.remove(&oname);
            }
            let nd = mg.get_mut(sn).get_mut(&ndir.0).expect("revalidated");
            if let Payload::Dir(entries) = &mut nd.payload {
                entries.insert(nname, src);
            }
            if src_is_dir && odir != ndir {
                // Fix the moved directory's ".." and the parents' link counts.
                let s = mg.get_mut(ss).get_mut(&src.0).expect("revalidated");
                if let Payload::Dir(entries) = &mut s.payload {
                    entries.insert("..".to_string(), ndir);
                }
                mg.get_mut(so).get_mut(&odir.0).expect("revalidated").nlink -= 1;
                mg.get_mut(sn).get_mut(&ndir.0).expect("revalidated").nlink += 1;
                self.dcaches[ss].bump();
            }
            mg.get_mut(so).get_mut(&odir.0).expect("revalidated").mtime = now;
            mg.get_mut(sn).get_mut(&ndir.0).expect("revalidated").mtime = now;
            self.dcaches[so].bump();
            self.dcaches[sn].bump();
            return Ok(());
        }
    }

    /// True when `anc` is `node` or an ancestor of `node`.
    fn is_same_or_ancestor(&self, anc: Ino, node: Ino) -> SysResult<bool> {
        let mut cur = node;
        loop {
            if cur == anc {
                return Ok(true);
            }
            let parent = self.try_with_inode(cur, |i| match &i.payload {
                Payload::Dir(e) => e.get("..").copied().ok_or(Errno::EIO),
                _ => Err(Errno::ENOTDIR),
            })?;
            if parent == cur {
                return Ok(false); // reached root
            }
            cur = parent;
        }
    }

    /// List a directory (requires read permission on it). The listing is
    /// a snapshot: entries are copied out under the directory's shard
    /// lock, then each entry's kind is fetched from its own shard. An
    /// entry unlinked by a concurrent thread between the two steps is
    /// skipped rather than failing the listing.
    pub fn readdir(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<Vec<DirEntry>> {
        let dir = self.resolve(start, p, true, cred)?;
        self.check_access(dir, cred, Access::R)?;
        let snapshot: Vec<(String, Ino)> = self.try_with_inode(dir, |i| match &i.payload {
            Payload::Dir(e) => Ok(e.iter().map(|(n, &ino)| (n.clone(), ino)).collect()),
            _ => Err(Errno::ENOTDIR),
        })?;
        let mut out = Vec::with_capacity(snapshot.len());
        for (name, ino) in snapshot {
            if let Ok(kind) = self.kind(ino) {
                out.push(DirEntry { name, ino, kind });
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Metadata operations
    // ------------------------------------------------------------------

    /// `stat` / `lstat` depending on `follow`.
    pub fn stat(&self, start: Ino, p: &str, follow: bool, cred: &Cred) -> SysResult<StatBuf> {
        let ino = self.resolve(start, p, follow, cred)?;
        self.fstat(ino)
    }

    /// `fstat` by inode.
    pub fn fstat(&self, ino: Ino) -> SysResult<StatBuf> {
        self.with_inode(ino, |i| i.stat(ino))
    }

    /// Change permission bits; only the owner or root may.
    pub fn chmod(&self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        let now = self.tick();
        let mut g = self.shards.write(self.shards.shard_of(ino.0));
        let inode = g.get_mut(&ino.0).ok_or(Errno::ENOENT)?;
        if cred.uid != 0 && cred.uid != inode.uid {
            return Err(Errno::EPERM);
        }
        inode.mode = mode & 0o7777;
        inode.ctime = now;
        self.log(|| WalRecordRef::Chmod {
            ino: ino.0,
            mode: mode & 0o7777,
            now,
        });
        Ok(())
    }

    /// Change ownership; only root may change the uid, the owner may
    /// change the gid to their own group.
    pub fn chown(&self, start: Ino, p: &str, uid: u32, gid: u32, cred: &Cred) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        let now = self.tick();
        let mut g = self.shards.write(self.shards.shard_of(ino.0));
        let inode = g.get_mut(&ino.0).ok_or(Errno::ENOENT)?;
        if cred.uid != 0 {
            let owner_chgrp = cred.uid == inode.uid && uid == inode.uid && gid == cred.gid;
            if !owner_chgrp {
                return Err(Errno::EPERM);
            }
        }
        inode.uid = uid;
        inode.gid = gid;
        inode.ctime = now;
        self.log(|| WalRecordRef::Chown { ino: ino.0, uid, gid, now });
        Ok(())
    }

    /// `access(2)`: does `cred` hold `want` on the object at `p`?
    pub fn access(&self, start: Ino, p: &str, want: Access, cred: &Cred) -> SysResult<()> {
        let ino = self.resolve(start, p, true, cred)?;
        self.check_access(ino, cred, want)
    }

    // ------------------------------------------------------------------
    // Convenience helpers (used heavily by the kernel and tests)
    // ------------------------------------------------------------------

    /// Create or replace a file at `p` with the given contents.
    pub fn write_file(&self, start: Ino, p: &str, data: &[u8], cred: &Cred) -> SysResult<Ino> {
        // The retry is strictly for create races with other threads. It
        // must be bounded: a dangling symlink at `p` makes `resolve` fail
        // ENOENT while `create` fails EEXIST *deterministically*, and that
        // case must surface EEXIST, not spin.
        let mut retries = 0;
        let ino = loop {
            match self.resolve(start, p, true, cred) {
                Ok(ino) => {
                    self.check_access(ino, cred, Access::W)?;
                    self.truncate(ino, 0)?;
                    break ino;
                }
                Err(Errno::ENOENT) => match self.create(start, p, 0o644, cred) {
                    Ok(ino) => break ino,
                    Err(Errno::EEXIST) if retries < 2 => {
                        retries += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => return Err(e),
            }
        };
        self.write_at(ino, 0, data)?;
        Ok(ino)
    }

    /// Read a whole file.
    pub fn read_file(&self, start: Ino, p: &str, cred: &Cred) -> SysResult<Vec<u8>> {
        let ino = self.resolve(start, p, true, cred)?;
        self.check_access(ino, cred, Access::R)?;
        self.file_data(ino)
    }

    /// `mkdir -p`: create every missing directory along `p`.
    pub fn mkdir_all(&self, start: Ino, p: &str, mode: u16, cred: &Cred) -> SysResult<Ino> {
        let mut cur = if path::is_absolute(p) { self.root } else { start };
        for comp in path::components(p) {
            // Bounded for the same reason as `write_file`: the retry only
            // exists to absorb a create race, never to spin.
            let mut retries = 0;
            loop {
                match self.entry_get(cur, comp)? {
                    Some(ino) => {
                        cur = ino;
                        break;
                    }
                    None => match self.mkdir(cur, comp, mode, cred) {
                        Ok(ino) => {
                            cur = ino;
                            break;
                        }
                        Err(Errno::EEXIST) if retries < 2 => {
                            retries += 1;
                            continue;
                        }
                        Err(e) => return Err(e),
                    },
                }
            }
        }
        Ok(cur)
    }

    // ------------------------------------------------------------------
    // Durability plumbing (see crate::wal)
    // ------------------------------------------------------------------

    /// Serialize the whole namespace and cut the log at a consistent
    /// point. With every shard read-locked (so no mutation — and hence
    /// no WAL append — can be in flight), the WAL rotates to a fresh
    /// segment whose first LSN becomes the snapshot *watermark*, then
    /// the inode table is serialized under those same locks. Every
    /// record below the watermark is reflected in the returned blob;
    /// every record at or above it is replayed on top at boot. Returns
    /// `(blob, watermark)`; the caller commits the pair with
    /// [`Wal::install_snapshot`]. Errors when no WAL is attached.
    pub fn snapshot_cut(&self) -> std::io::Result<(Vec<u8>, u64)> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no WAL attached"))?;
        let guards = self.shards.read_all();
        let alloc = self.alloc.lock();
        let watermark = wal.rotate()?;
        let mut blob = Vec::new();
        wal::put_u64(&mut blob, self.root.0);
        wal::put_u64(&mut blob, self.clock.load(Ordering::Relaxed));
        wal::put_u64(&mut blob, self.change_gen.load(Ordering::Relaxed));
        wal::put_u64(&mut blob, alloc.next);
        // Sorted for a deterministic blob; unlinked-but-pinned inodes
        // are skipped — open handles do not survive a restart, so the
        // recovered namespace must not contain them.
        let mut inodes: Vec<(u64, &Inode)> = guards
            .iter()
            .flat_map(|g| g.iter().map(|(k, v)| (*k, v)))
            .filter(|(_, inode)| inode.nlink > 0)
            .collect();
        inodes.sort_by_key(|(ino, _)| *ino);
        wal::put_u64(&mut blob, inodes.len() as u64);
        for (ino, inode) in inodes {
            wal::put_u64(&mut blob, ino);
            match &inode.payload {
                Payload::File(_) => blob.push(0),
                Payload::Dir(_) => blob.push(1),
                Payload::Symlink(_) => blob.push(2),
            }
            wal::put_u16(&mut blob, inode.mode);
            wal::put_u32(&mut blob, inode.uid);
            wal::put_u32(&mut blob, inode.gid);
            wal::put_u32(&mut blob, inode.nlink);
            wal::put_u64(&mut blob, inode.atime);
            wal::put_u64(&mut blob, inode.mtime);
            wal::put_u64(&mut blob, inode.ctime);
            match &inode.payload {
                Payload::File(f) => wal::put_bytes(&mut blob, &f.to_vec()),
                Payload::Dir(e) => {
                    wal::put_u64(&mut blob, e.len() as u64);
                    for (name, child) in e {
                        wal::put_str(&mut blob, name);
                        wal::put_u64(&mut blob, child.0);
                    }
                }
                Payload::Symlink(t) => wal::put_str(&mut blob, t),
            }
        }
        Ok((blob, watermark))
    }

    /// Rebuild a filesystem from a [`Vfs::snapshot_cut`] blob. `None`
    /// on any decode failure (the caller treats that as a corrupt
    /// snapshot). Chunk sizes are not preserved: file contents are
    /// rehydrated at the current default granularity, a performance
    /// detail with no namespace-visible effect.
    pub(crate) fn from_snapshot(blob: &[u8]) -> Option<Vfs> {
        let mut c = wal::Cursor::new(blob);
        let root = c.u64()?;
        let clock = c.u64()?;
        let change_gen = c.u64()?;
        let _alloc_next = c.u64()?;
        let count = c.u64()?;
        let vfs = Vfs::new();
        // The constructor seeds a root inode; the blob carries the
        // real one (same number, restored attributes).
        vfs.shards
            .write(vfs.shards.shard_of(root))
            .remove(&root);
        vfs.clock.store(clock, Ordering::Relaxed);
        vfs.change_gen.store(change_gen, Ordering::Relaxed);
        for _ in 0..count {
            let ino = c.u64()?;
            let tag = c.u8()?;
            let mode = c.u16()?;
            let uid = c.u32()?;
            let gid = c.u32()?;
            let nlink = c.u32()?;
            let atime = c.u64()?;
            let mtime = c.u64()?;
            let ctime = c.u64()?;
            let payload = match tag {
                0 => {
                    let data = c.bytes()?;
                    let mut f = FileContent::new(vfs.chunk_size);
                    f.write_at(0, &data);
                    Payload::File(f)
                }
                1 => {
                    let n = c.u64()?;
                    let mut entries = BTreeMap::new();
                    for _ in 0..n {
                        let name = c.str()?;
                        let child = c.u64()?;
                        entries.insert(name, Ino(child));
                    }
                    Payload::Dir(entries)
                }
                2 => Payload::Symlink(c.str()?),
                _ => return None,
            };
            vfs.shards.write(vfs.shards.shard_of(ino)).insert(
                ino,
                Inode {
                    payload,
                    mode,
                    uid,
                    gid,
                    nlink,
                    pins: 0,
                    atime,
                    mtime,
                    ctime,
                },
            );
        }
        c.done().then_some(vfs)
    }

    /// Redo one logged mutation during replay. Records are *physical*:
    /// they carry the inode number and timestamp the live operation
    /// used, so no permission check, allocation, or clock tick happens
    /// here — the record installs exactly what the live operation
    /// installed. A record naming an inode that no longer exists is
    /// skipped silently: the only way that happens is a write to an
    /// unlinked-but-pinned file, which was already invisible in the
    /// namespace the log describes.
    pub(crate) fn apply_record(&self, rec: &WalRecord) {
        match rec {
            WalRecord::Create {
                dir,
                name,
                ino,
                mode,
                uid,
                gid,
                now,
            } => self.apply_new_inode(
                *dir,
                name,
                *ino,
                Payload::File(FileContent::new(self.chunk_size)),
                *mode,
                *uid,
                *gid,
                *now,
                1,
                false,
            ),
            WalRecord::Mkdir {
                dir,
                name,
                ino,
                mode,
                uid,
                gid,
                now,
            } => {
                let mut entries = BTreeMap::new();
                entries.insert(".".to_string(), Ino(*ino));
                entries.insert("..".to_string(), Ino(*dir));
                self.apply_new_inode(
                    *dir,
                    name,
                    *ino,
                    Payload::Dir(entries),
                    *mode,
                    *uid,
                    *gid,
                    *now,
                    2,
                    true,
                );
            }
            WalRecord::Symlink {
                dir,
                name,
                ino,
                target,
                uid,
                gid,
                now,
            } => self.apply_new_inode(
                *dir,
                name,
                *ino,
                Payload::Symlink(target.clone()),
                0o777,
                *uid,
                *gid,
                *now,
                1,
                false,
            ),
            WalRecord::Link {
                dir,
                name,
                target,
                now,
            } => {
                let sd = self.shards.shard_of(*dir);
                let st = self.shards.shard_of(*target);
                let mut pair = PairGuard::lock(&self.shards, sd, st);
                if pair.map_ref(st).contains_key(target) {
                    if let Some(dinode) = pair.map(sd).get_mut(dir) {
                        dinode.mtime = *now;
                        if let Payload::Dir(entries) = &mut dinode.payload {
                            entries.insert(name.clone(), Ino(*target));
                        }
                        let t = pair.map(st).get_mut(target).expect("checked");
                        t.nlink += 1;
                        t.ctime = *now;
                    }
                }
            }
            WalRecord::Unlink {
                dir,
                name,
                target,
                now,
            } => {
                let sd = self.shards.shard_of(*dir);
                let st = self.shards.shard_of(*target);
                let mut pair = PairGuard::lock(&self.shards, sd, st);
                if let Some(dinode) = pair.map(sd).get_mut(dir) {
                    if let Payload::Dir(entries) = &mut dinode.payload {
                        entries.remove(name);
                    }
                    dinode.mtime = *now;
                }
                if let Some(t) = pair.map(st).get_mut(target) {
                    t.nlink = t.nlink.saturating_sub(1);
                    t.ctime = *now;
                    self.maybe_free_locked(st, pair.map(st), Ino(*target));
                }
            }
            WalRecord::Rmdir {
                dir,
                name,
                target,
                now,
            } => {
                let sd = self.shards.shard_of(*dir);
                let st = self.shards.shard_of(*target);
                let mut pair = PairGuard::lock(&self.shards, sd, st);
                if let Some(dinode) = pair.map(sd).get_mut(dir) {
                    if let Payload::Dir(entries) = &mut dinode.payload {
                        entries.remove(name);
                    }
                    dinode.nlink = dinode.nlink.saturating_sub(1);
                    dinode.mtime = *now;
                }
                if let Some(t) = pair.map(st).get_mut(target) {
                    t.nlink = 0;
                    self.maybe_free_locked(st, pair.map(st), Ino(*target));
                }
            }
            WalRecord::Rename {
                odir,
                oname,
                ndir,
                nname,
                src,
                replaced,
                replaced_is_dir,
                src_is_dir,
                now,
            } => {
                let so = self.shards.shard_of(*odir);
                let sn = self.shards.shard_of(*ndir);
                let ss = self.shards.shard_of(*src);
                let mut idxs = vec![so, sn, ss];
                if *replaced != 0 {
                    idxs.push(self.shards.shard_of(*replaced));
                }
                let mut mg = self.shards.write_many(&idxs);
                if mg.get(so).get(odir).is_none()
                    || mg.get(sn).get(ndir).is_none()
                    || mg.get(ss).get(src).is_none()
                {
                    return;
                }
                if *replaced != 0 {
                    let sdst = self.shards.shard_of(*replaced);
                    let nd = mg.get_mut(sn).get_mut(ndir).expect("checked");
                    if let Payload::Dir(entries) = &mut nd.payload {
                        entries.remove(nname);
                    }
                    if *replaced_is_dir {
                        nd.nlink = nd.nlink.saturating_sub(1);
                    }
                    if let Some(d) = mg.get_mut(sdst).get_mut(replaced) {
                        if *replaced_is_dir {
                            d.nlink = 0;
                        } else {
                            d.nlink = d.nlink.saturating_sub(1);
                        }
                        self.maybe_free_locked(sdst, mg.get_mut(sdst), Ino(*replaced));
                    }
                }
                let od = mg.get_mut(so).get_mut(odir).expect("checked");
                if let Payload::Dir(entries) = &mut od.payload {
                    entries.remove(oname);
                }
                let nd = mg.get_mut(sn).get_mut(ndir).expect("checked");
                if let Payload::Dir(entries) = &mut nd.payload {
                    entries.insert(nname.clone(), Ino(*src));
                }
                if *src_is_dir && odir != ndir {
                    let s = mg.get_mut(ss).get_mut(src).expect("checked");
                    if let Payload::Dir(entries) = &mut s.payload {
                        entries.insert("..".to_string(), Ino(*ndir));
                    }
                    let od = mg.get_mut(so).get_mut(odir).expect("checked");
                    od.nlink = od.nlink.saturating_sub(1);
                    mg.get_mut(sn).get_mut(ndir).expect("checked").nlink += 1;
                }
                mg.get_mut(so).get_mut(odir).expect("checked").mtime = *now;
                mg.get_mut(sn).get_mut(ndir).expect("checked").mtime = *now;
            }
            WalRecord::Write {
                ino,
                off,
                data,
                now,
            } => {
                let mut g = self.shards.write(self.shards.shard_of(*ino));
                if let Some(inode) = g.get_mut(ino) {
                    if let Payload::File(file) = &mut inode.payload {
                        file.write_at(*off as usize, data);
                        inode.mtime = *now;
                    }
                }
            }
            WalRecord::Truncate { ino, len, now } => {
                let mut g = self.shards.write(self.shards.shard_of(*ino));
                if let Some(inode) = g.get_mut(ino) {
                    if let Payload::File(file) = &mut inode.payload {
                        file.resize(*len as usize);
                        inode.mtime = *now;
                    }
                }
            }
            WalRecord::Chmod { ino, mode, now } => {
                let mut g = self.shards.write(self.shards.shard_of(*ino));
                if let Some(inode) = g.get_mut(ino) {
                    inode.mode = mode & 0o7777;
                    inode.ctime = *now;
                }
            }
            WalRecord::Chown {
                ino,
                uid,
                gid,
                now,
            } => {
                let mut g = self.shards.write(self.shards.shard_of(*ino));
                if let Some(inode) = g.get_mut(ino) {
                    inode.uid = *uid;
                    inode.gid = *gid;
                    inode.ctime = *now;
                }
            }
            // Account records are interpreted by the kernel crate, not
            // the filesystem.
            WalRecord::AccountAdd { .. } | WalRecord::AccountRemove { .. } => {}
        }
        // Advance the logical clock past the record's timestamp so
        // post-recovery mutations stamp strictly later times. (The live
        // clock may have been further ahead — failed operations tick
        // without logging — but per-inode times are restored verbatim
        // above, so the lag is invisible in the namespace.)
        if let Some(now) = record_now(rec) {
            self.clock.fetch_max(now, Ordering::Relaxed);
            self.change_gen.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shared redo path for the three inode-creating records.
    #[allow(clippy::too_many_arguments)]
    fn apply_new_inode(
        &self,
        dir: u64,
        name: &str,
        ino: u64,
        payload: Payload,
        mode: u16,
        uid: u32,
        gid: u32,
        now: u64,
        nlink: u32,
        parent_gains_link: bool,
    ) {
        let sd = self.shards.shard_of(dir);
        let sc = self.shards.shard_of(ino);
        let mut pair = PairGuard::lock(&self.shards, sd, sc);
        let parent_is_dir = pair
            .map_ref(sd)
            .get(&dir)
            .is_some_and(|i| matches!(i.payload, Payload::Dir(_)));
        if !parent_is_dir {
            return;
        }
        pair.map(sc).insert(
            ino,
            Inode {
                payload,
                mode: mode & 0o7777,
                uid,
                gid,
                nlink,
                pins: 0,
                atime: now,
                mtime: now,
                ctime: now,
            },
        );
        let dinode = pair.map(sd).get_mut(&dir).expect("checked");
        if parent_gains_link {
            dinode.nlink += 1;
        }
        dinode.mtime = now;
        if let Payload::Dir(entries) = &mut dinode.payload {
            entries.insert(name.to_string(), Ino(ino));
        }
    }

    /// Rebuild the inode-number allocator after replay: the free list
    /// is unknowable from the log (and irrelevant — records carry
    /// explicit numbers), so allocation resumes past the highest live
    /// inode. Also drops any fully unlinked leftovers.
    pub(crate) fn finish_recovery(&self) {
        let mut max = self.root.0;
        for i in 0..self.shards.len() {
            let mut g = self.shards.write(i);
            g.retain(|_, inode| inode.nlink > 0);
            for ino in g.keys() {
                max = max.max(*ino);
            }
        }
        let mut a = self.alloc.lock();
        a.next = max + 1;
        a.free.clear();
    }

    /// A deterministic, human-readable dump of everything the
    /// namespace makes visible: one line per reachable object (walked
    /// depth-first in sorted entry order) with path, inode number,
    /// kind, permissions, ownership, link count, timestamps, and
    /// content (CRC for files, target for symlinks). Two filesystems
    /// with equal fingerprints are indistinguishable to every syscall;
    /// the crash-recovery suite compares a recovered namespace against
    /// a prefix twin with this.
    pub fn namespace_fingerprint(&self) -> String {
        let mut out = String::new();
        self.fingerprint_node("/", self.root, &mut out);
        out
    }

    fn fingerprint_node(&self, path: &str, ino: Ino, out: &mut String) {
        let info = self.with_inode(ino, |i| {
            let desc = match &i.payload {
                Payload::File(f) => {
                    let data = f.to_vec();
                    format!("file len={} crc={:08x}", data.len(), wal::crc32(&data))
                }
                Payload::Dir(_) => "dir".to_string(),
                Payload::Symlink(t) => format!("symlink -> {t}"),
            };
            let children: Vec<(String, Ino)> = match &i.payload {
                Payload::Dir(e) => e
                    .iter()
                    .filter(|(n, _)| n.as_str() != "." && n.as_str() != "..")
                    .map(|(n, c)| (n.clone(), *c))
                    .collect(),
                _ => Vec::new(),
            };
            let line = format!(
                "{path}|ino {}|{desc}|mode {:04o}|uid {} gid {}|nlink {}|t {}/{}/{}",
                ino.0, i.mode, i.uid, i.gid, i.nlink, i.atime, i.mtime, i.ctime
            );
            (line, children)
        });
        if let Ok((line, children)) = info {
            out.push_str(&line);
            out.push('\n');
            for (name, child) in children {
                let child_path = if path == "/" {
                    format!("/{name}")
                } else {
                    format!("{path}/{name}")
                };
                self.fingerprint_node(&child_path, child, out);
            }
        }
    }
}

/// The logical timestamp a record carries (`None` for account records,
/// which do not touch the filesystem clock).
fn record_now(rec: &WalRecord) -> Option<u64> {
    match rec {
        WalRecord::Create { now, .. }
        | WalRecord::Mkdir { now, .. }
        | WalRecord::Symlink { now, .. }
        | WalRecord::Link { now, .. }
        | WalRecord::Unlink { now, .. }
        | WalRecord::Rmdir { now, .. }
        | WalRecord::Rename { now, .. }
        | WalRecord::Write { now, .. }
        | WalRecord::Truncate { now, .. }
        | WalRecord::Chmod { now, .. }
        | WalRecord::Chown { now, .. } => Some(*now),
        WalRecord::AccountAdd { .. } | WalRecord::AccountRemove { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fs() -> Vfs {
        Vfs::new()
    }

    const ROOT: Cred = Cred::ROOT;

    #[test]
    fn create_and_read_back() {
        let v = fs();
        let ino = v.create(v.root(), "/hello", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"world").unwrap();
        let mut buf = [0u8; 16];
        let n = v.read_into(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn read_at_offset_and_eof() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"abcdef").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(v.read_into(ino, 2, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"cde");
        assert_eq!(v.read_into(ino, 100, &mut buf).unwrap(), 0);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 4, b"x").unwrap();
        assert_eq!(v.file_data(ino).unwrap(), &[0, 0, 0, 0, b'x']);
    }

    #[test]
    fn mkdir_and_nested_create() {
        let v = fs();
        v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/home/fred", 0o700, &ROOT).unwrap();
        v.create(v.root(), "/home/fred/data", 0o644, &ROOT).unwrap();
        let st = v.stat(v.root(), "/home/fred/data", true, &ROOT).unwrap();
        assert!(st.is_file());
    }

    #[test]
    fn mkdir_all_idempotent() {
        let v = fs();
        let a = v.mkdir_all(v.root(), "/a/b/c", 0o755, &ROOT).unwrap();
        let b = v.mkdir_all(v.root(), "/a/b/c", 0o755, &ROOT).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn enoent_and_eexist() {
        let v = fs();
        assert_eq!(
            v.stat(v.root(), "/missing", true, &ROOT),
            Err(Errno::ENOENT)
        );
        v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        assert_eq!(v.create(v.root(), "/f", 0o644, &ROOT), Err(Errno::EEXIST));
        assert_eq!(v.mkdir(v.root(), "/f", 0o755, &ROOT), Err(Errno::EEXIST));
    }

    #[test]
    fn relative_paths_resolve_from_start() {
        let v = fs();
        let home = v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.create(home, "notes.txt", 0o644, &ROOT).unwrap();
        assert!(v.stat(home, "notes.txt", true, &ROOT).unwrap().is_file());
        assert!(v
            .stat(home, "../home/notes.txt", true, &ROOT)
            .unwrap()
            .is_file());
        assert!(v.stat(home, "./notes.txt", true, &ROOT).unwrap().is_file());
    }

    #[test]
    fn dotdot_at_root_stays_at_root() {
        let v = fs();
        let r = v.resolve(v.root(), "/../../..", true, &ROOT).unwrap();
        assert_eq!(r, v.root());
    }

    #[test]
    fn unix_permissions_enforced() {
        let v = fs();
        let alice = Cred::new(100, 100);
        let bob = Cred::new(200, 200);
        v.mkdir(v.root(), "/home", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/home/alice", 0o700, &ROOT).unwrap();
        v.chown(v.root(), "/home/alice", 100, 100, &ROOT).unwrap();
        let f = v
            .create(v.root(), "/home/alice/secret", 0o600, &alice)
            .unwrap();
        v.write_at(f, 0, b"shh").unwrap();
        // Bob cannot traverse alice's 0700 home.
        assert_eq!(
            v.stat(v.root(), "/home/alice/secret", true, &bob),
            Err(Errno::EACCES)
        );
        // Alice can.
        assert!(v.stat(v.root(), "/home/alice/secret", true, &alice).is_ok());
        // Root always can.
        assert!(v.stat(v.root(), "/home/alice/secret", true, &ROOT).is_ok());
    }

    #[test]
    fn group_and_other_triads() {
        let v = fs();
        v.create(v.root(), "/f", 0o640, &ROOT).unwrap();
        v.chown(v.root(), "/f", 100, 50, &ROOT).unwrap();
        let groupmate = Cred::new(200, 50);
        let stranger = Cred::new(300, 300);
        let f = v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        assert!(v.check_access(f, &groupmate, Access::R).is_ok());
        assert_eq!(v.check_access(f, &groupmate, Access::W), Err(Errno::EACCES));
        assert_eq!(v.check_access(f, &stranger, Access::R), Err(Errno::EACCES));
    }

    #[test]
    fn symlink_follow_and_nofollow() {
        let v = fs();
        v.create(v.root(), "/target", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "/target", "/link", &ROOT).unwrap();
        let followed = v.stat(v.root(), "/link", true, &ROOT).unwrap();
        assert!(followed.is_file());
        let nofollow = v.stat(v.root(), "/link", false, &ROOT).unwrap();
        assert!(nofollow.is_symlink());
        assert_eq!(v.readlink(v.root(), "/link", &ROOT).unwrap(), "/target");
    }

    #[test]
    fn symlink_chain_and_relative_targets() {
        let v = fs();
        v.mkdir(v.root(), "/a", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/a/real", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "real", "/a/l1", &ROOT).unwrap();
        v.symlink(v.root(), "/a/l1", "/l2", &ROOT).unwrap();
        let st = v.stat(v.root(), "/l2", true, &ROOT).unwrap();
        assert!(st.is_file());
    }

    #[test]
    fn symlink_loop_detected() {
        let v = fs();
        v.symlink(v.root(), "/b", "/a", &ROOT).unwrap();
        v.symlink(v.root(), "/a", "/b", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/a", true, &ROOT), Err(Errno::ELOOP));
    }

    #[test]
    fn symlink_in_middle_of_path() {
        let v = fs();
        v.mkdir_all(v.root(), "/real/dir", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/real/dir/f", 0o644, &ROOT).unwrap();
        v.symlink(v.root(), "/real", "/alias", &ROOT).unwrap();
        assert!(v
            .stat(v.root(), "/alias/dir/f", true, &ROOT)
            .unwrap()
            .is_file());
    }

    #[test]
    fn dangling_symlink() {
        let v = fs();
        v.symlink(v.root(), "/nowhere", "/dangle", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/dangle", true, &ROOT), Err(Errno::ENOENT));
        assert!(v
            .stat(v.root(), "/dangle", false, &ROOT)
            .unwrap()
            .is_symlink());
    }

    #[test]
    fn hard_link_shares_inode() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"data").unwrap();
        v.link(v.root(), "/f", "/g", &ROOT).unwrap();
        let sf = v.stat(v.root(), "/f", true, &ROOT).unwrap();
        let sg = v.stat(v.root(), "/g", true, &ROOT).unwrap();
        assert_eq!(sf.ino, sg.ino);
        assert_eq!(sf.nlink, 2);
        v.unlink(v.root(), "/f", &ROOT).unwrap();
        let sg = v.stat(v.root(), "/g", true, &ROOT).unwrap();
        assert_eq!(sg.nlink, 1);
        assert_eq!(v.read_file(v.root(), "/g", &ROOT).unwrap(), b"data");
    }

    #[test]
    fn hard_link_to_dir_refused() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.link(v.root(), "/d", "/d2", &ROOT), Err(Errno::EPERM));
    }

    #[test]
    fn unlink_while_pinned_keeps_data() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"still here").unwrap();
        v.pin(ino).unwrap();
        v.unlink(v.root(), "/f", &ROOT).unwrap();
        // Name is gone but data is readable through the pin.
        assert_eq!(v.stat(v.root(), "/f", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.file_data(ino).unwrap(), b"still here");
        v.unpin(ino).unwrap();
        assert_eq!(v.file_data(ino), Err(Errno::ENOENT));
    }

    #[test]
    fn rmdir_semantics() {
        let v = fs();
        v.mkdir_all(v.root(), "/d/sub", 0o755, &ROOT).unwrap();
        assert_eq!(v.rmdir(v.root(), "/d", &ROOT), Err(Errno::ENOTEMPTY));
        v.rmdir(v.root(), "/d/sub", &ROOT).unwrap();
        v.rmdir(v.root(), "/d", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/d", true, &ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn unlink_dir_is_eisdir() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.unlink(v.root(), "/d", &ROOT), Err(Errno::EISDIR));
    }

    #[test]
    fn rename_file() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, b"x").unwrap();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.rename(v.root(), "/f", "/d/g", &ROOT).unwrap();
        assert_eq!(v.stat(v.root(), "/f", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.read_file(v.root(), "/d/g", &ROOT).unwrap(), b"x");
    }

    #[test]
    fn rename_replaces_file() {
        let v = fs();
        v.write_file(v.root(), "/a", b"aaa", &ROOT).unwrap();
        v.write_file(v.root(), "/b", b"bbb", &ROOT).unwrap();
        v.rename(v.root(), "/a", "/b", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/b", &ROOT).unwrap(), b"aaa");
    }

    #[test]
    fn rename_dir_updates_dotdot() {
        let v = fs();
        v.mkdir_all(v.root(), "/x/inner", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/y", 0o755, &ROOT).unwrap();
        v.rename(v.root(), "/x/inner", "/y/inner", &ROOT).unwrap();
        let y = v.resolve(v.root(), "/y", true, &ROOT).unwrap();
        let via_dotdot = v.resolve(v.root(), "/y/inner/..", true, &ROOT).unwrap();
        assert_eq!(via_dotdot, y);
    }

    #[test]
    fn rename_into_own_subtree_refused() {
        let v = fs();
        v.mkdir_all(v.root(), "/d/sub", 0o755, &ROOT).unwrap();
        assert_eq!(
            v.rename(v.root(), "/d", "/d/sub/d2", &ROOT),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn readdir_lists_dot_entries() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/d/f", 0o644, &ROOT).unwrap();
        let names: Vec<_> = v
            .readdir(v.root(), "/d", &ROOT)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, [".", "..", "f"]);
    }

    #[test]
    fn chmod_chown_rules() {
        let v = fs();
        let alice = Cred::new(100, 100);
        let bob = Cred::new(200, 200);
        v.mkdir(v.root(), "/pub", 0o777, &ROOT).unwrap();
        v.create(v.root(), "/pub/f", 0o644, &alice).unwrap();
        // Non-owner cannot chmod.
        assert_eq!(v.chmod(v.root(), "/pub/f", 0o600, &bob), Err(Errno::EPERM));
        v.chmod(v.root(), "/pub/f", 0o600, &alice).unwrap();
        assert_eq!(v.stat(v.root(), "/pub/f", true, &ROOT).unwrap().mode, 0o600);
        // Non-root cannot chown to another uid.
        assert_eq!(
            v.chown(v.root(), "/pub/f", 200, 200, &alice),
            Err(Errno::EPERM)
        );
        v.chown(v.root(), "/pub/f", 200, 200, &ROOT).unwrap();
    }

    #[test]
    fn nlink_accounting_for_dirs() {
        let v = fs();
        let d = v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 2);
        v.mkdir(v.root(), "/d/s1", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/d/s2", 0o755, &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 4);
        v.rmdir(v.root(), "/d/s1", &ROOT).unwrap();
        assert_eq!(v.fstat(d).unwrap().nlink, 3);
    }

    #[test]
    fn inode_recycling() {
        let v = fs();
        let before = v.live_inodes();
        let ino = v.create(v.root(), "/tmp1", 0o644, &ROOT).unwrap();
        v.unlink(v.root(), "/tmp1", &ROOT).unwrap();
        assert_eq!(v.live_inodes(), before);
        let ino2 = v.create(v.root(), "/tmp2", 0o644, &ROOT).unwrap();
        assert_eq!(ino, ino2, "freed inode number should be recycled");
    }

    #[test]
    fn resolve_entry_follows_final_symlink_to_real_dir() {
        let v = fs();
        v.mkdir_all(v.root(), "/private", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/private/real", 0o644, &ROOT).unwrap();
        v.mkdir(v.root(), "/public", 0o755, &ROOT).unwrap();
        v.symlink(v.root(), "/private/real", "/public/alias", &ROOT)
            .unwrap();
        let (dir, name, ino) = v.resolve_entry(v.root(), "/public/alias", &ROOT).unwrap();
        let private = v.resolve(v.root(), "/private", true, &ROOT).unwrap();
        assert_eq!(dir, private, "must land in the target's directory");
        assert_eq!(name, "real");
        assert!(ino.is_some());
    }

    #[test]
    fn resolve_entry_missing_final() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        let (dir, name, ino) = v.resolve_entry(v.root(), "/d/newfile", &ROOT).unwrap();
        assert_eq!(dir, v.resolve(v.root(), "/d", true, &ROOT).unwrap());
        assert_eq!(name, "newfile");
        assert!(ino.is_none());
    }

    #[test]
    fn resolve_entry_dangling_symlink_points_at_creation_site() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.symlink(v.root(), "/d/missing", "/lnk", &ROOT).unwrap();
        let (dir, name, ino) = v.resolve_entry(v.root(), "/lnk", &ROOT).unwrap();
        assert_eq!(dir, v.resolve(v.root(), "/d", true, &ROOT).unwrap());
        assert_eq!(name, "missing");
        assert!(ino.is_none());
    }

    #[test]
    fn path_too_long() {
        let v = fs();
        let long = format!("/{}", "a".repeat(5000));
        assert_eq!(
            v.resolve(v.root(), &long, true, &ROOT),
            Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn name_too_long() {
        let v = fs();
        let name = format!("/{}", "a".repeat(300));
        assert_eq!(
            v.create(v.root(), &name, 0o644, &ROOT),
            Err(Errno::ENAMETOOLONG)
        );
    }

    #[test]
    fn write_file_overwrites() {
        let v = fs();
        v.write_file(v.root(), "/f", b"first", &ROOT).unwrap();
        v.write_file(v.root(), "/f", b"2nd", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/f", &ROOT).unwrap(), b"2nd");
    }

    #[test]
    fn times_advance() {
        let v = fs();
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        let t0 = v.fstat(ino).unwrap().mtime;
        v.write_at(ino, 0, b"x").unwrap();
        let t1 = v.fstat(ino).unwrap().mtime;
        assert!(t1 > t0);
    }

    #[test]
    fn dentry_cache_hits_on_repeat_resolution() {
        let v = fs();
        v.mkdir_all(v.root(), "/a/b", 0o755, &ROOT).unwrap();
        v.create(v.root(), "/a/b/f", 0o644, &ROOT).unwrap();
        let (h0, _) = v.dentry_stats();
        v.resolve(v.root(), "/a/b/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/a/b/f", true, &ROOT).unwrap();
        let (h1, _) = v.dentry_stats();
        assert!(h1 > h0, "second walk must hit the cache ({h0} -> {h1})");
    }

    #[test]
    fn every_mutation_bumps_the_generation() {
        let v = fs();
        let mut last = v.change_generation();
        let mut expect_bump = |v: &Vfs, what: &str| {
            let g = v.change_generation();
            assert!(g > last, "{what} must bump the generation");
            last = g;
        };
        let f = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        expect_bump(&v, "create");
        v.write_at(f, 0, b"x").unwrap();
        expect_bump(&v, "write_at");
        v.truncate(f, 0).unwrap();
        expect_bump(&v, "truncate");
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        expect_bump(&v, "mkdir");
        v.link(v.root(), "/f", "/g", &ROOT).unwrap();
        expect_bump(&v, "link");
        v.symlink(v.root(), "/f", "/l", &ROOT).unwrap();
        expect_bump(&v, "symlink");
        v.rename(v.root(), "/g", "/h", &ROOT).unwrap();
        expect_bump(&v, "rename");
        v.chmod(v.root(), "/f", 0o600, &ROOT).unwrap();
        expect_bump(&v, "chmod");
        v.chown(v.root(), "/f", 1, 1, &ROOT).unwrap();
        expect_bump(&v, "chown");
        v.unlink(v.root(), "/h", &ROOT).unwrap();
        expect_bump(&v, "unlink");
        v.rmdir(v.root(), "/d", &ROOT).unwrap();
        expect_bump(&v, "rmdir");
    }

    #[test]
    fn cached_resolution_sees_rename_immediately() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        v.write_file(v.root(), "/d/a", b"1", &ROOT).unwrap();
        // Warm the cache on both the hit and the miss.
        assert!(v.resolve(v.root(), "/d/a", true, &ROOT).is_ok());
        assert_eq!(v.resolve(v.root(), "/d/b", true, &ROOT), Err(Errno::ENOENT));
        v.rename(v.root(), "/d/a", "/d/b", &ROOT).unwrap();
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT), Err(Errno::ENOENT));
        assert_eq!(v.read_file(v.root(), "/d/b", &ROOT).unwrap(), b"1");
    }

    #[test]
    fn negative_entry_invalidated_by_create() {
        let v = fs();
        assert_eq!(v.resolve(v.root(), "/new", true, &ROOT), Err(Errno::ENOENT));
        v.write_file(v.root(), "/new", b"now", &ROOT).unwrap();
        assert_eq!(v.read_file(v.root(), "/new", &ROOT).unwrap(), b"now");
    }

    #[test]
    fn stale_entry_never_served_across_inode_recycle() {
        let v = fs();
        v.mkdir(v.root(), "/d", 0o755, &ROOT).unwrap();
        let a = v.create(v.root(), "/d/a", 0o644, &ROOT).unwrap();
        // Cache "/d/a" -> a.
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT).unwrap(), a);
        v.unlink(v.root(), "/d/a", &ROOT).unwrap();
        // The recycled inode now lives under a different name.
        let b = v.create(v.root(), "/d/b", 0o644, &ROOT).unwrap();
        assert_eq!(a, b, "inode must be recycled for this test to bite");
        assert_eq!(v.resolve(v.root(), "/d/a", true, &ROOT), Err(Errno::ENOENT));
    }

    #[test]
    fn disabled_cache_records_no_hits() {
        let mut v = fs();
        v.set_dentry_cache(false);
        v.write_file(v.root(), "/f", b"x", &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        assert_eq!(v.dentry_stats(), (0, 0));
    }

    #[test]
    fn cloned_vfs_starts_with_cold_cache() {
        let v = fs();
        v.write_file(v.root(), "/f", b"x", &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        v.resolve(v.root(), "/f", true, &ROOT).unwrap();
        let c = v.clone();
        assert_eq!(c.dentry_stats(), (0, 0));
        assert_eq!(c.change_generation(), v.change_generation());
        assert_eq!(c.read_file(c.root(), "/f", &ROOT).unwrap(), b"x");
    }

    #[test]
    fn dentry_cache_stays_bounded() {
        let v = Vfs::with_shards(4);
        for i in 0..DENTRY_CACHE_CAP + 64 {
            v.write_file(v.root(), &format!("/f{i}"), b"", &ROOT).unwrap();
        }
        for i in 0..DENTRY_CACHE_CAP + 64 {
            v.resolve(v.root(), &format!("/f{i}"), true, &ROOT).unwrap();
        }
        assert!(v.dcache_len() <= DENTRY_CACHE_CAP);
        for c in &*v.dcaches {
            let map = c.map.read();
            let total: usize = map.by_dir.values().map(|m| m.len()).sum();
            assert_eq!(total, map.len, "len accounting must match the map");
            assert!(map.len <= c.cap, "per-shard cache exceeded its cap");
        }
    }

    #[test]
    fn concurrent_disjoint_subtrees() {
        let v = std::sync::Arc::new(Vfs::with_shards(8));
        let baseline = v.live_inodes();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let v = std::sync::Arc::clone(&v);
                thread::spawn(move || {
                    let dir = format!("/w{t}");
                    v.mkdir(v.root(), &dir, 0o755, &ROOT).unwrap();
                    for i in 0..200 {
                        let p = format!("{dir}/f{i}");
                        v.write_file(v.root(), &p, b"payload", &ROOT).unwrap();
                        assert_eq!(v.read_file(v.root(), &p, &ROOT).unwrap(), b"payload");
                        v.unlink(v.root(), &p, &ROOT).unwrap();
                    }
                    v.rmdir(v.root(), &dir, &ROOT).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(v.live_inodes(), baseline, "all inodes must be reclaimed");
    }

    #[test]
    fn concurrent_cross_shard_renames_and_creates_do_not_deadlock() {
        let v = std::sync::Arc::new(Vfs::with_shards(4));
        v.mkdir(v.root(), "/a", 0o755, &ROOT).unwrap();
        v.mkdir(v.root(), "/b", 0o755, &ROOT).unwrap();
        for i in 0..8 {
            v.write_file(v.root(), &format!("/a/f{i}"), b"x", &ROOT).unwrap();
        }
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let v = std::sync::Arc::clone(&v);
                thread::spawn(move || {
                    for round in 0..100 {
                        // Shuttle shared files between the two dirs; races
                        // with other threads are expected and benign.
                        let i = (t + round) % 8;
                        let _ = v.rename(
                            v.root(),
                            &format!("/a/f{i}"),
                            &format!("/b/f{i}"),
                            &ROOT,
                        );
                        let _ = v.rename(
                            v.root(),
                            &format!("/b/f{i}"),
                            &format!("/a/f{i}"),
                            &ROOT,
                        );
                        // Churn private files to mix creates/unlinks in.
                        let p = format!("/b/t{t}");
                        let _ = v.write_file(v.root(), &p, b"y", &ROOT);
                        let _ = v.unlink(v.root(), &p, &ROOT);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every shared file must still exist in exactly one of the dirs.
        for i in 0..8 {
            let in_a = v.stat(v.root(), &format!("/a/f{i}"), true, &ROOT).is_ok();
            let in_b = v.stat(v.root(), &format!("/b/f{i}"), true, &ROOT).is_ok();
            assert!(in_a ^ in_b, "f{i} must live in exactly one directory");
        }
    }
}
