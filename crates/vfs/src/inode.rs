//! Inodes and their metadata.

use crate::extent::FileContent;
use std::collections::BTreeMap;
use std::fmt;

/// An inode number. Stable for the lifetime of the inode; numbers are
/// recycled only after the inode is freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ino(pub u64);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What kind of object an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

/// The result of `stat`: a snapshot of an inode's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatBuf {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub kind: FileKind,
    /// Permission bits (`0o7777` space; type is in `kind`).
    pub mode: u16,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Size in bytes (file length, symlink target length, or number of
    /// directory entries).
    pub size: u64,
    /// Logical access time.
    pub atime: u64,
    /// Logical modification time.
    pub mtime: u64,
    /// Logical status-change time.
    pub ctime: u64,
}

impl StatBuf {
    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.kind == FileKind::Dir
    }

    /// True for regular files.
    pub fn is_file(&self) -> bool {
        self.kind == FileKind::File
    }

    /// True for symbolic links.
    pub fn is_symlink(&self) -> bool {
        self.kind == FileKind::Symlink
    }
}

/// The content of an inode. Regular-file bytes live in the chunked,
/// `Arc`-backed [`FileContent`] so reads can borrow extents instead of
/// copying (see the `extent` module).
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    File(FileContent),
    Dir(BTreeMap<String, Ino>),
    Symlink(String),
}

impl Payload {
    pub(crate) fn kind(&self) -> FileKind {
        match self {
            Payload::File(_) => FileKind::File,
            Payload::Dir(_) => FileKind::Dir,
            Payload::Symlink(_) => FileKind::Symlink,
        }
    }

    pub(crate) fn size(&self) -> u64 {
        match self {
            Payload::File(data) => data.len() as u64,
            Payload::Dir(entries) => entries.len() as u64,
            Payload::Symlink(target) => target.len() as u64,
        }
    }
}

/// One inode: payload plus metadata.
#[derive(Debug, Clone)]
pub(crate) struct Inode {
    pub payload: Payload,
    pub mode: u16,
    pub uid: u32,
    pub gid: u32,
    /// Hard link count (directories count `.` and parent references).
    pub nlink: u32,
    /// Open-handle pins: the inode's storage survives `nlink == 0` while
    /// pinned (Unix unlink-while-open semantics).
    pub pins: u32,
    pub atime: u64,
    pub mtime: u64,
    pub ctime: u64,
}

impl Inode {
    pub(crate) fn stat(&self, ino: Ino) -> StatBuf {
        StatBuf {
            ino,
            kind: self.payload.kind(),
            mode: self.mode,
            uid: self.uid,
            gid: self.gid,
            nlink: self.nlink,
            size: self.payload.size(),
            atime: self.atime,
            mtime: self.mtime,
            ctime: self.ctime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(bytes: &[u8]) -> FileContent {
        let mut f = FileContent::new(crate::extent::DEFAULT_CHUNK_SIZE);
        f.write_at(0, bytes);
        f
    }

    #[test]
    fn payload_kinds() {
        assert_eq!(Payload::File(file_of(b"")).kind(), FileKind::File);
        assert_eq!(Payload::Dir(BTreeMap::new()).kind(), FileKind::Dir);
        assert_eq!(Payload::Symlink("/x".into()).kind(), FileKind::Symlink);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::File(file_of(&[1, 2, 3])).size(), 3);
        assert_eq!(Payload::Symlink("/etc".into()).size(), 4);
        let mut d = BTreeMap::new();
        d.insert("a".to_string(), Ino(1));
        assert_eq!(Payload::Dir(d).size(), 1);
    }

    #[test]
    fn statbuf_predicates() {
        let mut s = StatBuf {
            ino: Ino(1),
            kind: FileKind::File,
            mode: 0o644,
            uid: 0,
            gid: 0,
            nlink: 1,
            size: 0,
            atime: 0,
            mtime: 0,
            ctime: 0,
        };
        assert!(s.is_file() && !s.is_dir() && !s.is_symlink());
        s.kind = FileKind::Dir;
        assert!(s.is_dir());
        s.kind = FileKind::Symlink;
        assert!(s.is_symlink());
    }
}
