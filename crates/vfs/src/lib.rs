//! The in-memory Unix filesystem substrate.
//!
//! Identity boxing was evaluated on a real Linux kernel; here the kernel is
//! simulated, and this crate provides its filesystem: a faithful
//! in-memory Unix file system with inodes, directories, regular files,
//! **symbolic links** (followed during resolution, with `ELOOP`
//! detection), **hard links** (shared inodes with link counts), Unix
//! permission bits, ownership, and logical timestamps.
//!
//! Symlinks and hard links are not incidental: the paper's security
//! analysis (Section 6, "overlooking indirect paths") hinges on them. The
//! identity box must check the ACL of a symlink *target's* directory and
//! must refuse hard links it cannot vet, so the substrate implements both
//! honestly.
//!
//! Everything is addressed by absolute or cwd-relative textual paths, just
//! like the syscall interface; inode numbers ([`Ino`]) appear in results
//! (`stat`) and in the open-file layer of the kernel.
//!
//! The filesystem is in-memory but not necessarily volatile: attach a
//! [`wal::Wal`] (see the [`wal`] module) and every mutation is logged
//! to disk, snapshotted periodically, and replayed on the next boot.

pub mod extent;
mod fs;
mod inode;
pub mod path;
pub mod wal;

pub use extent::{ByteExtent, ExtentList};
pub use fs::{Cred, DirEntry, FaultHook, Vfs};
pub use inode::{FileKind, Ino, StatBuf};
pub use wal::{AccountOp, Recovered, RecoveryReport, Wal, WalConfig, WalRecord, WalRecordRef, WalStats};

/// Access request bits used by permission checks (same encoding as the
/// Unix `access(2)` masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access(pub u8);

impl Access {
    /// No permission bits: existence/traversal only.
    pub const NONE: Access = Access(0);
    /// Read permission.
    pub const R: Access = Access(4);
    /// Write permission.
    pub const W: Access = Access(2);
    /// Execute / search permission.
    pub const X: Access = Access(1);
    /// Read + write.
    pub const RW: Access = Access(6);

    /// Union of two access masks.
    pub fn and(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }
}
