//! Textual path utilities.
//!
//! Paths in the simulated system are plain UTF-8 strings with `/` as the
//! separator, exactly as they cross the (simulated) syscall boundary.
//! Resolution of `.`/`..`/symlinks happens structurally in
//! [`crate::Vfs`]; the helpers here are purely lexical.

/// Maximum length of a path accepted by the filesystem.
pub const PATH_MAX: usize = 4096;

/// Maximum length of one path component.
pub const NAME_MAX: usize = 255;

/// True when the path begins with `/`.
pub fn is_absolute(path: &str) -> bool {
    path.starts_with('/')
}

/// Split a path into its non-empty components. `"/a//b/"` yields
/// `["a", "b"]`; `"."` and `".."` are kept (they are resolved
/// structurally, not lexically).
pub fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

/// Join `base` (absolute) with `rel`; when `rel` is absolute it wins.
/// Purely textual: no `.`/`..` collapsing.
pub fn join(base: &str, rel: &str) -> String {
    if is_absolute(rel) {
        rel.to_string()
    } else if base.ends_with('/') {
        format!("{base}{rel}")
    } else {
        format!("{base}/{rel}")
    }
}

/// The parent directory and final component of a path, lexically.
/// `"/a/b/c"` yields `("/a/b", "c")`; `"/x"` yields `("/", "x")`;
/// a trailing slash is ignored. Returns `None` for the root itself or an
/// empty path.
pub fn split_parent(path: &str) -> Option<(&str, &str)> {
    let trimmed = path.trim_end_matches('/');
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.rfind('/') {
        Some(0) => Some(("/", &trimmed[1..])),
        Some(i) => Some((&trimmed[..i], &trimmed[i + 1..])),
        None => Some((".", trimmed)),
    }
}

/// The final component of a path (`basename`), or `None` for the root.
pub fn basename(path: &str) -> Option<&str> {
    split_parent(path).map(|(_, name)| name)
}

/// Lexically normalize an absolute path: collapse `//`, `.` and `..`
/// (without consulting the filesystem — only safe for display purposes,
/// e.g. `getcwd`).
pub fn normalize_lexical(path: &str) -> String {
    let mut stack: Vec<&str> = Vec::new();
    for c in components(path) {
        match c {
            "." => {}
            ".." => {
                stack.pop();
            }
            name => stack.push(name),
        }
    }
    if stack.is_empty() {
        "/".to_string()
    } else {
        let mut s = String::new();
        for c in &stack {
            s.push('/');
            s.push_str(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_detection() {
        assert!(is_absolute("/a/b"));
        assert!(!is_absolute("a/b"));
        assert!(!is_absolute(""));
    }

    #[test]
    fn components_skip_empties() {
        let v: Vec<_> = components("/a//b/c/").collect();
        assert_eq!(v, ["a", "b", "c"]);
        let v: Vec<_> = components("/").collect();
        assert!(v.is_empty());
    }

    #[test]
    fn join_behaviour() {
        assert_eq!(join("/home", "fred"), "/home/fred");
        assert_eq!(join("/home/", "fred"), "/home/fred");
        assert_eq!(join("/home", "/etc/passwd"), "/etc/passwd");
    }

    #[test]
    fn split_parent_cases() {
        assert_eq!(split_parent("/a/b/c"), Some(("/a/b", "c")));
        assert_eq!(split_parent("/x"), Some(("/", "x")));
        assert_eq!(split_parent("/x/"), Some(("/", "x")));
        assert_eq!(split_parent("rel"), Some((".", "rel")));
        assert_eq!(split_parent("a/b"), Some(("a", "b")));
        assert_eq!(split_parent("/"), None);
        assert_eq!(split_parent(""), None);
    }

    #[test]
    fn basename_cases() {
        assert_eq!(basename("/work/sim.exe"), Some("sim.exe"));
        assert_eq!(basename("/"), None);
    }

    #[test]
    fn lexical_normalization() {
        assert_eq!(normalize_lexical("/a/./b/../c"), "/a/c");
        assert_eq!(normalize_lexical("/../.."), "/");
        assert_eq!(normalize_lexical("//x///y"), "/x/y");
        assert_eq!(normalize_lexical("/"), "/");
    }
}
