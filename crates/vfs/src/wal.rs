//! The durability plane: a write-ahead log plus namespace snapshots.
//!
//! The paper's storage servers are trusted with real data, so the
//! namespace (files, directories, ACL files, accounts) must survive a
//! server crash. The in-memory [`Vfs`] stays the hot path; durability is
//! layered *under* it:
//!
//! * Every mutating namespace operation appends one compact binary
//!   [`WalRecord`] to the log **while still holding the shard write
//!   locks that applied it**. The WAL mutex is a leaf lock below the
//!   shard locks, so the global append order is a valid serialization
//!   of the sharded execution: two operations that do not commute always
//!   share a shard lock, hence appear in the log in their real order.
//! * Records are framed `[len u32][crc32 u32][lsn varint + payload]`;
//!   header fixed-width little-endian, record fields LEB128 varints, all
//!   little-endian. Replay stops at the first frame that fails the
//!   length or CRC check, so a torn final record (the normal crash
//!   shape) silently truncates to the last durable prefix.
//! * `fsync` is amortized by **group commit**: appends buffer in the OS
//!   file and a flusher thread syncs every [`WalConfig::sync_ms`]
//!   milliseconds, or inline once [`WalConfig::sync_ops`] appends
//!   accumulate. `sync_ops == 0` degenerates to sync-every-op (no loss
//!   window, every append pays the fsync).
//! * A **snapshot** serializes the whole namespace under all shard read
//!   locks, rotates the log at an LSN watermark captured under those
//!   same locks, and purges segments older than the watermark. Boot
//!   restores the snapshot, then replays the suffix (`lsn >=
//!   watermark`) on top.
//!
//! Records are *physical redo* records: they carry the inode number the
//! live operation assigned and the logical timestamp it ticked, so
//! replay does not have to reproduce allocator or clock behaviour — it
//! installs exactly the state the live operation installed. After
//! replay the inode allocator is rebuilt as `next = max(live) + 1` with
//! an empty free list, and open-handle pins reset to zero (processes do
//! not survive a crash; an inode that was unlinked-but-pinned is gone,
//! which is exactly the namespace a restarted server should see).
//!
//! Failure policy is **fail-stop on the log**: an append that cannot
//! reach the disk marks the log dead and counts an error; the in-memory
//! namespace keeps serving, and the error counter surfaces through the
//! `idbox_wal_errors_total` Prometheus family so an operator sees the
//! durability loss instead of a silent lie.

use crate::fs::Vfs;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Magic prefix of a log segment file.
const SEG_MAGIC: &[u8; 8] = b"IDBXWAL1";
/// Magic prefix of a snapshot file.
const SNAP_MAGIC: &[u8; 8] = b"IDBXSNP1";
/// Upper bound accepted for one framed record (a frame claiming more is
/// treated as torn/corrupt, not allocated).
const MAX_FRAME: u32 = 1 << 30;
/// The snapshot file name; segments are `wal-<start_lsn>.log`.
const SNAP_NAME: &str = "snapshot.bin";

/// Configuration for [`Wal::open`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the snapshot and log segments (created when
    /// missing).
    pub dir: PathBuf,
    /// Appends accumulated before the flusher is woken early. `0` =
    /// sync every append before returning (no loss window); `n > 0` =
    /// group commit, syncing after every `n` appends or on the flusher
    /// tick, whichever comes first. The tick (`sync_ms`) is the primary
    /// pacing — this threshold is a backstop that bounds how much a
    /// burst can accumulate between ticks, so it should be large
    /// (thousands): a small value degrades to fsync-per-batch and taxes
    /// the mutation hot path with the fsync's kernel CPU.
    pub sync_ops: u64,
    /// Flusher cadence for group commit, in milliseconds — the loss
    /// window under power failure. Ignored (no flusher thread) when
    /// `sync_ops == 0`; clamped to at least 1 ms otherwise.
    pub sync_ms: u64,
}

impl WalConfig {
    /// Group-commit defaults (65536-op backstop / 25 ms tick) in `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            sync_ops: 65536,
            sync_ms: 25,
        }
    }

    /// Switch to sync-every-op (every append fsyncs inline).
    pub fn sync_every_op(mut self) -> Self {
        self.sync_ops = 0;
        self
    }
}

/// One logged namespace mutation, exactly as the live operation applied
/// it. Field meanings mirror the corresponding [`Vfs`] operations; all
/// inode numbers are the raw `u64` the live operation assigned, and
/// `now` is the logical timestamp it ticked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// `create`: a regular file `name` in directory `dir`.
    Create {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Assigned inode number.
        ino: u64,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// `mkdir`: a directory `name` in `dir`.
    Mkdir {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Assigned inode number.
        ino: u64,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// `symlink`: a link `name` in `dir` holding `target`.
    Symlink {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Assigned inode number.
        ino: u64,
        /// Link target text.
        target: String,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// `link`: a new name for existing inode `target`.
    Link {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Linked inode number.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// `unlink`: remove `name` (bound to `target`) from `dir`.
    Unlink {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Unlinked inode number.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// `rmdir`: remove empty directory `name` (bound to `target`).
    Rmdir {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: String,
        /// Removed directory inode.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// `rename`: move `src` from `odir/oname` to `ndir/nname`,
    /// replacing `replaced` (0 = nothing replaced).
    Rename {
        /// Old parent directory inode.
        odir: u64,
        /// Old entry name.
        oname: String,
        /// New parent directory inode.
        ndir: u64,
        /// New entry name.
        nname: String,
        /// Moved inode number.
        src: u64,
        /// Replaced destination inode (0 when the destination was
        /// empty).
        replaced: u64,
        /// Whether the replaced destination was a directory.
        replaced_is_dir: bool,
        /// Whether the moved inode is a directory.
        src_is_dir: bool,
        /// Logical timestamp.
        now: u64,
    },
    /// `write_at`: `data` written at byte offset `off` of file `ino`.
    Write {
        /// Target file inode.
        ino: u64,
        /// Byte offset.
        off: u64,
        /// Bytes written.
        data: Vec<u8>,
        /// Logical timestamp.
        now: u64,
    },
    /// `truncate`: resize file `ino` to `len` bytes.
    Truncate {
        /// Target file inode.
        ino: u64,
        /// New length.
        len: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// `chmod`: set permission bits on `ino`.
    Chmod {
        /// Target inode.
        ino: u64,
        /// New permission bits.
        mode: u16,
        /// Logical timestamp.
        now: u64,
    },
    /// `chown`: set ownership on `ino`.
    Chown {
        /// Target inode.
        ino: u64,
        /// New owner uid.
        uid: u32,
        /// New owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// An account added to the kernel's account database, as its passwd
    /// line (the vfs does not interpret it; the kernel replays it).
    AccountAdd {
        /// The account's `/etc/passwd` line.
        line: String,
    },
    /// An account removed from the kernel's account database.
    AccountRemove {
        /// The removed account's name.
        name: String,
    },
}

/// Borrowed view of a [`WalRecord`], for allocation-free logging: the
/// vfs mutation paths build one of these on the stack out of the
/// caller's own strings and buffers and hand it to [`Wal::append`], so
/// the hot path never clones a name or a data slice. Variants and
/// field meanings mirror [`WalRecord`] exactly; the owned form exists
/// for decode/replay and delegates its encoding here.
#[derive(Debug, Clone, Copy)]
pub enum WalRecordRef<'a> {
    /// See [`WalRecord::Create`].
    Create {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Assigned inode number.
        ino: u64,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Mkdir`].
    Mkdir {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Assigned inode number.
        ino: u64,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Symlink`].
    Symlink {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Assigned inode number.
        ino: u64,
        /// Link target text.
        target: &'a str,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Link`].
    Link {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Linked inode number.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Unlink`].
    Unlink {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Unlinked inode number.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Rmdir`].
    Rmdir {
        /// Parent directory inode.
        dir: u64,
        /// Entry name.
        name: &'a str,
        /// Removed directory inode.
        target: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Rename`].
    Rename {
        /// Old parent directory inode.
        odir: u64,
        /// Old entry name.
        oname: &'a str,
        /// New parent directory inode.
        ndir: u64,
        /// New entry name.
        nname: &'a str,
        /// Moved inode number.
        src: u64,
        /// Replaced destination inode (0 when the destination was
        /// empty).
        replaced: u64,
        /// Whether the replaced destination was a directory.
        replaced_is_dir: bool,
        /// Whether the moved inode is a directory.
        src_is_dir: bool,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Write`].
    Write {
        /// Target file inode.
        ino: u64,
        /// Byte offset.
        off: u64,
        /// Bytes written.
        data: &'a [u8],
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Truncate`].
    Truncate {
        /// Target file inode.
        ino: u64,
        /// New length.
        len: u64,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Chmod`].
    Chmod {
        /// Target inode.
        ino: u64,
        /// New permission bits.
        mode: u16,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::Chown`].
    Chown {
        /// Target inode.
        ino: u64,
        /// New owner uid.
        uid: u32,
        /// New owner gid.
        gid: u32,
        /// Logical timestamp.
        now: u64,
    },
    /// See [`WalRecord::AccountAdd`].
    AccountAdd {
        /// The account's `/etc/passwd` line.
        line: &'a str,
    },
    /// See [`WalRecord::AccountRemove`].
    AccountRemove {
        /// The removed account's name.
        name: &'a str,
    },
}

impl WalRecordRef<'_> {
    fn tag(self) -> u8 {
        match self {
            WalRecordRef::Create { .. } => 1,
            WalRecordRef::Mkdir { .. } => 2,
            WalRecordRef::Symlink { .. } => 3,
            WalRecordRef::Link { .. } => 4,
            WalRecordRef::Unlink { .. } => 5,
            WalRecordRef::Rmdir { .. } => 6,
            WalRecordRef::Rename { .. } => 7,
            WalRecordRef::Write { .. } => 8,
            WalRecordRef::Truncate { .. } => 9,
            WalRecordRef::Chmod { .. } => 10,
            WalRecordRef::Chown { .. } => 11,
            WalRecordRef::AccountAdd { .. } => 12,
            WalRecordRef::AccountRemove { .. } => 13,
        }
    }

    /// Append the record's binary form (tag + fields) to `out`.
    pub fn encode(self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            WalRecordRef::Create {
                dir,
                name,
                ino,
                mode,
                uid,
                gid,
                now,
            }
            | WalRecordRef::Mkdir {
                dir,
                name,
                ino,
                mode,
                uid,
                gid,
                now,
            } => {
                put_vu64(out, dir);
                put_vstr(out, name);
                put_vu64(out, ino);
                put_vu64(out, u64::from(mode));
                put_vu64(out, u64::from(uid));
                put_vu64(out, u64::from(gid));
                put_vu64(out, now);
            }
            WalRecordRef::Symlink {
                dir,
                name,
                ino,
                target,
                uid,
                gid,
                now,
            } => {
                put_vu64(out, dir);
                put_vstr(out, name);
                put_vu64(out, ino);
                put_vstr(out, target);
                put_vu64(out, u64::from(uid));
                put_vu64(out, u64::from(gid));
                put_vu64(out, now);
            }
            WalRecordRef::Link {
                dir,
                name,
                target,
                now,
            }
            | WalRecordRef::Unlink {
                dir,
                name,
                target,
                now,
            }
            | WalRecordRef::Rmdir {
                dir,
                name,
                target,
                now,
            } => {
                put_vu64(out, dir);
                put_vstr(out, name);
                put_vu64(out, target);
                put_vu64(out, now);
            }
            WalRecordRef::Rename {
                odir,
                oname,
                ndir,
                nname,
                src,
                replaced,
                replaced_is_dir,
                src_is_dir,
                now,
            } => {
                put_vu64(out, odir);
                put_vstr(out, oname);
                put_vu64(out, ndir);
                put_vstr(out, nname);
                put_vu64(out, src);
                put_vu64(out, replaced);
                out.push(u8::from(replaced_is_dir));
                out.push(u8::from(src_is_dir));
                put_vu64(out, now);
            }
            WalRecordRef::Write {
                ino,
                off,
                data,
                now,
            } => {
                put_vu64(out, ino);
                put_vu64(out, off);
                put_vbytes(out, data);
                put_vu64(out, now);
            }
            WalRecordRef::Truncate { ino, len, now } => {
                put_vu64(out, ino);
                put_vu64(out, len);
                put_vu64(out, now);
            }
            WalRecordRef::Chmod { ino, mode, now } => {
                put_vu64(out, ino);
                put_vu64(out, u64::from(mode));
                put_vu64(out, now);
            }
            WalRecordRef::Chown { ino, uid, gid, now } => {
                put_vu64(out, ino);
                put_vu64(out, u64::from(uid));
                put_vu64(out, u64::from(gid));
                put_vu64(out, now);
            }
            WalRecordRef::AccountAdd { line } => put_vstr(out, line),
            WalRecordRef::AccountRemove { name } => put_vstr(out, name),
        }
    }
}

// ---------------------------------------------------------------------
// CRC-32C (Castagnoli polynomial; no external crates)
// ---------------------------------------------------------------------

fn crc32_tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0x82F6_3B78 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[0][i] = c;
            i += 1;
        }
        // Derived tables: t[k][b] advances byte b through k extra zero
        // bytes, letting the hot loop fold eight input bytes per step.
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// CRC-32C of `data`, as used by the record frames and the snapshot
/// trailer. The Castagnoli polynomial — the same choice ext4 and iSCSI
/// made — so the hot path can ride the SSE4.2 `crc32` instruction where
/// the CPU has it; table-driven slicing-by-8 elsewhere. The WAL
/// computes this once per namespace mutation under a shard write lock,
/// so the per-byte cost shows up directly in metadata throughput.
pub fn crc32(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the required CPU feature was just detected.
        return unsafe { crc32_hw(data) };
    }
    crc32_sw(data)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32_hw(data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut c = u64::from(!0u32);
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        c = _mm_crc32_u64(c, u64::from_le_bytes(ch.try_into().unwrap()));
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

fn crc32_sw(data: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

pub(crate) fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// LEB128 varint writer, the record codec's integer form (see
/// [`Cursor::vu64`]).
pub(crate) fn put_vu64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

pub(crate) fn put_vbytes(out: &mut Vec<u8>, v: &[u8]) {
    put_vu64(out, v.len() as u64);
    out.extend_from_slice(v);
}

pub(crate) fn put_vstr(out: &mut Vec<u8>, v: &str) {
    put_vbytes(out, v.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice; every `get`
/// returns `None` past the end, so a truncated payload surfaces as a
/// decode failure instead of a panic.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(|s| s.to_vec())
    }

    /// LEB128 varint: the record codec's integer form (records are
    /// dominated by small integers — inode numbers, uids, logical
    /// ticks — so this halves the logged bytes versus fixed width).
    pub(crate) fn vu64(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift == 63 && b > 1 {
                return None; // overflow: not a canonical u64
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    pub(crate) fn vbytes(&mut self) -> Option<Vec<u8>> {
        let n = usize::try_from(self.vu64()?).ok()?;
        self.take(n).map(|s| s.to_vec())
    }

    pub(crate) fn vstr(&mut self) -> Option<String> {
        String::from_utf8(self.vbytes()?).ok()
    }

    /// Bytes consumed so far.
    pub(crate) fn consumed(&self) -> usize {
        self.pos
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl WalRecord {
    /// Borrowed view of this record, for allocation-free encoding.
    pub fn as_ref(&self) -> WalRecordRef<'_> {
        match self {
            WalRecord::Create { dir, name, ino, mode, uid, gid, now } => WalRecordRef::Create {
                dir: *dir,
                name,
                ino: *ino,
                mode: *mode,
                uid: *uid,
                gid: *gid,
                now: *now,
            },
            WalRecord::Mkdir { dir, name, ino, mode, uid, gid, now } => WalRecordRef::Mkdir {
                dir: *dir,
                name,
                ino: *ino,
                mode: *mode,
                uid: *uid,
                gid: *gid,
                now: *now,
            },
            WalRecord::Symlink { dir, name, ino, target, uid, gid, now } => {
                WalRecordRef::Symlink {
                    dir: *dir,
                    name,
                    ino: *ino,
                    target,
                    uid: *uid,
                    gid: *gid,
                    now: *now,
                }
            }
            WalRecord::Link { dir, name, target, now } => WalRecordRef::Link {
                dir: *dir,
                name,
                target: *target,
                now: *now,
            },
            WalRecord::Unlink { dir, name, target, now } => WalRecordRef::Unlink {
                dir: *dir,
                name,
                target: *target,
                now: *now,
            },
            WalRecord::Rmdir { dir, name, target, now } => WalRecordRef::Rmdir {
                dir: *dir,
                name,
                target: *target,
                now: *now,
            },
            WalRecord::Rename {
                odir,
                oname,
                ndir,
                nname,
                src,
                replaced,
                replaced_is_dir,
                src_is_dir,
                now,
            } => WalRecordRef::Rename {
                odir: *odir,
                oname,
                ndir: *ndir,
                nname,
                src: *src,
                replaced: *replaced,
                replaced_is_dir: *replaced_is_dir,
                src_is_dir: *src_is_dir,
                now: *now,
            },
            WalRecord::Write { ino, off, data, now } => WalRecordRef::Write {
                ino: *ino,
                off: *off,
                data,
                now: *now,
            },
            WalRecord::Truncate { ino, len, now } => WalRecordRef::Truncate {
                ino: *ino,
                len: *len,
                now: *now,
            },
            WalRecord::Chmod { ino, mode, now } => WalRecordRef::Chmod {
                ino: *ino,
                mode: *mode,
                now: *now,
            },
            WalRecord::Chown { ino, uid, gid, now } => WalRecordRef::Chown {
                ino: *ino,
                uid: *uid,
                gid: *gid,
                now: *now,
            },
            WalRecord::AccountAdd { line } => WalRecordRef::AccountAdd { line },
            WalRecord::AccountRemove { name } => WalRecordRef::AccountRemove { name },
        }
    }

    /// Append the record's binary form (tag + fields) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.as_ref().encode(out)
    }

    /// Decode one record from `buf` (which must contain exactly one
    /// record). `None` on any truncation, unknown tag, or trailing
    /// garbage.
    pub fn decode(buf: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(buf);
        let tag = c.u8()?;
        let rec = match tag {
            1 | 2 => {
                let dir = c.vu64()?;
                let name = c.vstr()?;
                let ino = c.vu64()?;
                let mode = u16::try_from(c.vu64()?).ok()?;
                let uid = u32::try_from(c.vu64()?).ok()?;
                let gid = u32::try_from(c.vu64()?).ok()?;
                let now = c.vu64()?;
                if tag == 1 {
                    WalRecord::Create {
                        dir,
                        name,
                        ino,
                        mode,
                        uid,
                        gid,
                        now,
                    }
                } else {
                    WalRecord::Mkdir {
                        dir,
                        name,
                        ino,
                        mode,
                        uid,
                        gid,
                        now,
                    }
                }
            }
            3 => WalRecord::Symlink {
                dir: c.vu64()?,
                name: c.vstr()?,
                ino: c.vu64()?,
                target: c.vstr()?,
                uid: u32::try_from(c.vu64()?).ok()?,
                gid: u32::try_from(c.vu64()?).ok()?,
                now: c.vu64()?,
            },
            4..=6 => {
                let dir = c.vu64()?;
                let name = c.vstr()?;
                let target = c.vu64()?;
                let now = c.vu64()?;
                match tag {
                    4 => WalRecord::Link {
                        dir,
                        name,
                        target,
                        now,
                    },
                    5 => WalRecord::Unlink {
                        dir,
                        name,
                        target,
                        now,
                    },
                    _ => WalRecord::Rmdir {
                        dir,
                        name,
                        target,
                        now,
                    },
                }
            }
            7 => WalRecord::Rename {
                odir: c.vu64()?,
                oname: c.vstr()?,
                ndir: c.vu64()?,
                nname: c.vstr()?,
                src: c.vu64()?,
                replaced: c.vu64()?,
                replaced_is_dir: c.u8()? != 0,
                src_is_dir: c.u8()? != 0,
                now: c.vu64()?,
            },
            8 => WalRecord::Write {
                ino: c.vu64()?,
                off: c.vu64()?,
                data: c.vbytes()?,
                now: c.vu64()?,
            },
            9 => WalRecord::Truncate {
                ino: c.vu64()?,
                len: c.vu64()?,
                now: c.vu64()?,
            },
            10 => WalRecord::Chmod {
                ino: c.vu64()?,
                mode: u16::try_from(c.vu64()?).ok()?,
                now: c.vu64()?,
            },
            11 => WalRecord::Chown {
                ino: c.vu64()?,
                uid: u32::try_from(c.vu64()?).ok()?,
                gid: u32::try_from(c.vu64()?).ok()?,
                now: c.vu64()?,
            },
            12 => WalRecord::AccountAdd { line: c.vstr()? },
            13 => WalRecord::AccountRemove { name: c.vstr()? },
            _ => return None,
        };
        c.done().then_some(rec)
    }
}

// ---------------------------------------------------------------------
// The log proper
// ---------------------------------------------------------------------

/// Counters describing one [`Wal`]'s activity, rendered into the
/// `idbox_wal_*` Prometheus families by the server. All values are
/// cumulative since [`Wal::open`] except `log_bytes` (current segment
/// size) and the recovery fields (fixed at open time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Framed bytes appended.
    pub append_bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Append/sync failures after which the log went fail-stop.
    pub errors: u64,
    /// Bytes in the active segment.
    pub log_bytes: u64,
    /// Records appended since the last snapshot (drives auto-snapshot).
    pub since_snapshot: u64,
    /// Records replayed at open.
    pub replayed: u64,
    /// Whether replay stopped at a torn tail (normal crash shape).
    pub torn_tail: bool,
    /// Whether replay stopped at a mid-log CRC/length mismatch.
    pub corrupt_frame: bool,
    /// Whether a snapshot was restored at open.
    pub snapshot_loaded: bool,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// The restored namespace (`None` when the directory held no
    /// durable state — a first boot). The returned filesystem has no
    /// WAL attached; the caller attaches the log with [`Vfs::set_wal`]
    /// once it is ready to resume logging.
    pub vfs: Option<Vfs>,
    /// The opaque account-database blob stored in the snapshot, if one
    /// was restored (the kernel crate interprets it).
    pub accounts: Option<Vec<u8>>,
    /// Account records replayed from the log suffix, in order.
    pub account_ops: Vec<AccountOp>,
    /// Replay statistics, also visible via [`Wal::stats`].
    pub report: RecoveryReport,
}

/// One replayed account mutation (interpreted by the kernel crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccountOp {
    /// An account was added; the payload is its passwd line.
    Add(String),
    /// The named account was removed.
    Remove(String),
}

/// Replay statistics from one [`Wal::open`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// True when durable state was found and restored (snapshot, log
    /// records, or both).
    pub restored: bool,
    /// Records replayed from log segments.
    pub replayed: u64,
    /// Replay stopped at a torn final record.
    pub torn_tail: bool,
    /// Replay stopped at a mid-log corruption (CRC or length mismatch
    /// with further bytes behind it).
    pub corrupt_frame: bool,
    /// A snapshot was restored.
    pub snapshot_loaded: bool,
    /// The snapshot's LSN watermark (0 without a snapshot).
    pub watermark: u64,
}

struct WalInner {
    file: File,
    /// Next LSN to assign.
    next_lsn: u64,
    /// First LSN of the active segment (names the file).
    seg_start: u64,
    /// Appends since the last fsync.
    dirty: u64,
    /// Frames appended but not yet written to the file. Group commit
    /// keeps the syscall off the hot path entirely: appends only
    /// extend this buffer, and the flusher writes + fsyncs it. Within
    /// one fsync window the distinction is invisible to crash safety —
    /// un-fsynced bytes are lost either way.
    buf: Vec<u8>,
    /// Bytes appended to the active segment (including still-buffered
    /// bytes).
    seg_bytes: u64,
    /// Lifetime append count. Plain (non-atomic) because every append
    /// already holds this mutex; keeping it here spares the hot path an
    /// atomic read-modify-write per counter.
    appends: u64,
    /// Lifetime appended frame bytes.
    append_bytes: u64,
    /// Appends since the last snapshot (auto-snapshot cadence input).
    since_snapshot: u64,
    /// Remaining byte budget before a simulated crash (testing knob):
    /// writes beyond the budget are silently dropped, exactly like
    /// power loss mid-write. `None` = disabled.
    crash_after: Option<u64>,
    /// Fail-stop flag: a real I/O error stops all further logging.
    dead: bool,
}

/// The write-ahead log. One instance per [`Vfs`]; shared behind an
/// `Arc` between the filesystem (which appends), the kernel (which
/// snapshots and logs account changes), and the server (which renders
/// stats and drives auto-snapshots).
pub struct Wal {
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    fsyncs: AtomicU64,
    snapshots: AtomicU64,
    errors: AtomicU64,
    report: RecoveryReport,
    /// Serializes flushers (the flusher thread, `rotate`, manual
    /// `sync` callers) so batches hit the file and the disk in LSN
    /// order. Ordered **above** `inner`: a flusher takes `flush_lock`
    /// then `inner`; the append hot path takes only `inner`. The
    /// guarded `Vec` is the spare batch buffer the flusher swaps with
    /// [`WalInner::buf`], so neither side ever reallocates steady-state.
    flush_lock: Mutex<Vec<u8>>,
    /// Set when an appender has already asked for a flush this batch;
    /// throttles threshold wakeups to one unpark per flush cycle.
    flush_pending: AtomicBool,
    flusher_stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The flusher's thread handle, for threshold wakeups. Unset until
    /// [`Wal::start_flusher`] runs; while unset, the threshold falls
    /// back to an inline flush so group commit is never *less* durable
    /// than configured.
    flusher_thread: std::sync::OnceLock<std::thread::Thread>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Wal({:?}, sync_ops {}, sync_ms {})",
            self.cfg.dir, self.cfg.sync_ops, self.cfg.sync_ms
        )
    }
}

fn seg_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:020}.log")
}

fn parse_seg_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

fn open_segment(dir: &Path, start_lsn: u64) -> std::io::Result<File> {
    let path = dir.join(seg_name(start_lsn));
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    if f.metadata()?.len() == 0 {
        f.write_all(SEG_MAGIC)?;
        f.sync_data()?;
    }
    Ok(f)
}

/// Best-effort directory fsync so renames/creates of snapshot and
/// segment files are themselves durable (ignored on platforms where
/// directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Wal {
    /// Open (or create) the log in `cfg.dir`, replaying any durable
    /// state found there. Returns the log plus what was recovered; the
    /// caller wires the recovered namespace back into a kernel and then
    /// attaches the log with [`Vfs::set_wal`].
    pub fn open(cfg: WalConfig) -> std::io::Result<(Wal, Recovered)> {
        fs::create_dir_all(&cfg.dir)?;
        // A leftover `snapshot.tmp` is a snapshot that never committed;
        // the previous snapshot (or the full log) is still authoritative.
        let _ = fs::remove_file(cfg.dir.join("snapshot.tmp"));
        let recovered = replay_dir(&cfg.dir)?;
        let report = recovered.report;
        // Appends resume in a fresh segment starting at the next LSN:
        // old segments stay as replayable prefixes (any garbage past
        // the last good record was truncated by `replay_dir`).
        let next_lsn = report.next_lsn;
        let file = open_segment(&cfg.dir, next_lsn)?;
        sync_dir(&cfg.dir);
        let seg_bytes = file.metadata()?.len();
        let wal = Wal {
            inner: Mutex::new(WalInner {
                file,
                next_lsn,
                seg_start: next_lsn,
                dirty: 0,
                buf: Vec::new(),
                seg_bytes,
                appends: 0,
                append_bytes: 0,
                since_snapshot: 0,
                crash_after: None,
                dead: false,
            }),
            fsyncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            report: report.public,
            flush_lock: Mutex::new(Vec::new()),
            flush_pending: AtomicBool::new(false),
            flusher_stop: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
            flusher_thread: std::sync::OnceLock::new(),
            cfg,
        };
        Ok((
            wal,
            Recovered {
                vfs: recovered.vfs,
                accounts: recovered.accounts,
                account_ops: recovered.account_ops,
                report: report.public,
            },
        ))
    }

    /// Spawn the group-commit flusher thread against `self` (called by
    /// the owner once the log is in its final `Arc`). A no-op in
    /// sync-every-op mode, where appends sync inline.
    ///
    /// With the flusher running, the append hot path does no file I/O
    /// at all: it buffers the frame and, at the `sync_ops` threshold,
    /// unparks this thread, which writes and fsyncs the batch. The
    /// thread also wakes itself every `sync_ms` so a quiet log still
    /// drains promptly.
    pub fn start_flusher(self: &Arc<Self>) {
        if self.cfg.sync_ops == 0 {
            return;
        }
        let period = Duration::from_millis(self.cfg.sync_ms.max(1));
        let stop = Arc::clone(&self.flusher_stop);
        let wal = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::park_timeout(period);
                wal.sync();
            }
        });
        let _ = self.flusher_thread.set(handle.thread().clone());
        *self.flusher.lock() = Some(handle);
    }

    /// The replay outcome fixed at open time.
    pub fn report(&self) -> RecoveryReport {
        self.report
    }

    /// Live counters (see [`WalStats`]).
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock();
        WalStats {
            appends: inner.appends,
            append_bytes: inner.append_bytes,
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            log_bytes: inner.seg_bytes,
            since_snapshot: inner.since_snapshot,
            replayed: self.report.replayed,
            torn_tail: self.report.torn_tail,
            corrupt_frame: self.report.corrupt_frame,
            snapshot_loaded: self.report.snapshot_loaded,
        }
    }

    /// Records appended since the last snapshot (drives the server's
    /// auto-snapshot cadence).
    pub fn since_snapshot(&self) -> u64 {
        self.inner.lock().since_snapshot
    }

    /// Testing knob: silently drop every byte written after `budget`
    /// more bytes reach the file — the write-side shape of a crash,
    /// including a torn final record when the budget lands mid-frame.
    /// The crash-point proptest drives this from the seeded fault
    /// plane.
    pub fn set_crash_after_bytes(&self, budget: u64) {
        self.inner.lock().crash_after = Some(budget);
    }

    /// Append one record; called by the vfs under the mutating shard
    /// write locks (the WAL mutex is a leaf below them) and by the
    /// kernel for account records. Assigns the next LSN; honours the
    /// group-commit policy before returning.
    pub fn append(&self, rec: WalRecordRef<'_>) {
        let mut inner = self.inner.lock();
        if inner.dead {
            return;
        }
        // Frame straight into the pending buffer — the hot path does
        // no file I/O and no allocation (steady-state); the flusher
        // (or the inline sync below) writes and fsyncs batches. The
        // `[len][crc]` header is reserved up front and backfilled once
        // the payload is encoded in place.
        let i = &mut *inner;
        let start = i.buf.len();
        i.buf.extend_from_slice(&[0u8; 8]);
        put_vu64(&mut i.buf, i.next_lsn);
        rec.encode(&mut i.buf);
        let payload_len = i.buf.len() - start - 8;
        let crc = crc32(&i.buf[start + 8..]);
        i.buf[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        i.buf[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
        let frame_len = (payload_len + 8) as u64;
        i.next_lsn += 1;
        i.dirty += 1;
        i.seg_bytes += frame_len;
        i.appends += 1;
        i.append_bytes += frame_len;
        i.since_snapshot += 1;
        if self.cfg.sync_ops == 0 {
            // Sync-every-op: the record is on disk before the mutation
            // returns.
            Self::sync_locked(&mut inner, &self.fsyncs, &self.errors);
        } else if inner.dirty >= self.cfg.sync_ops {
            // Group-commit threshold: hand the batch to the flusher
            // without blocking this (shard-lock-holding) thread, waking
            // it once per batch. Until a flusher exists, flush inline —
            // never weaker than the configured policy.
            match self.flusher_thread.get() {
                Some(t) => {
                    drop(inner);
                    if !self.flush_pending.swap(true, Ordering::Relaxed) {
                        t.unpark();
                    }
                }
                None => Self::sync_locked(&mut inner, &self.fsyncs, &self.errors),
            }
        }
    }

    fn sync_locked(inner: &mut WalInner, fsyncs: &AtomicU64, errors: &AtomicU64) {
        if inner.dead {
            inner.buf.clear();
            inner.dirty = 0;
            return;
        }
        // Simulated crash: persist only the remaining byte budget and
        // drop the rest, exactly like power loss mid-write — and never
        // fsync, the machine is "off".
        if let Some(budget) = inner.crash_after {
            let n = (budget as usize).min(inner.buf.len());
            let (file, buf) = (&mut inner.file, &inner.buf);
            let _ = file.write_all(&buf[..n]);
            inner.crash_after = Some(budget - n as u64);
            inner.buf.clear();
            inner.dirty = 0;
            return;
        }
        if !inner.buf.is_empty() {
            let (file, buf) = (&mut inner.file, &inner.buf);
            if file.write_all(buf).is_err() {
                inner.dead = true;
                inner.buf.clear();
                inner.dirty = 0;
                errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            inner.buf.clear();
        }
        if inner.dirty == 0 {
            return;
        }
        match inner.file.sync_data() {
            Ok(()) => {
                inner.dirty = 0;
                fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                inner.dead = true;
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Force an fsync of any unsynced appends (the group-commit
    /// flusher's tick; also safe to call manually).
    ///
    /// Double-buffered: the pending frames are written to the file
    /// under the append mutex (a cheap buffered syscall), but the
    /// fsync — the expensive part — runs on a duplicated handle
    /// *outside* it, so appenders holding vfs shard locks never wait
    /// on the disk. `flush_lock` keeps concurrent flushers in order.
    pub fn sync(&self) {
        let mut batch = self.flush_lock.lock();
        let (file, covered) = {
            let mut inner = self.inner.lock();
            if inner.dead || inner.crash_after.is_some() {
                Self::sync_locked(&mut inner, &self.fsyncs, &self.errors);
                return;
            }
            if inner.dirty == 0 {
                return;
            }
            // Steal the pending frames by swapping in the (empty)
            // spare buffer; appends landing from here on belong to the
            // next batch and may wake us again.
            std::mem::swap(&mut inner.buf, &mut *batch);
            self.flush_pending.store(false, Ordering::Relaxed);
            match inner.file.try_clone() {
                Ok(f) => (f, inner.dirty),
                Err(_) => {
                    // Cannot dup the handle: put the frames back and
                    // flush inline rather than skip the sync.
                    std::mem::swap(&mut inner.buf, &mut *batch);
                    Self::sync_locked(&mut inner, &self.fsyncs, &self.errors);
                    return;
                }
            }
        };
        // Write and fsync with no appender-visible lock held. The file
        // sees writes only under `flush_lock` in this mode, so batches
        // stay in LSN order.
        let wrote = if batch.is_empty() { Ok(()) } else { (&file).write_all(&batch) };
        batch.clear();
        match wrote.and_then(|()| file.sync_data()) {
            Ok(()) => {
                // Only the records this fsync covered become clean;
                // anything appended meanwhile stays dirty for the next
                // batch.
                let mut inner = self.inner.lock();
                inner.dirty = inner.dirty.saturating_sub(covered);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.inner.lock().dead = true;
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Rotate to a fresh segment and return the first LSN that will
    /// land in it — the snapshot watermark. Called by
    /// [`Vfs::snapshot_cut`] **while all shard read locks are held**,
    /// so no namespace record can be in flight: every record below the
    /// watermark is already applied to the state being serialized, and
    /// every record at or above it will be replayed on top.
    pub(crate) fn rotate(&self) -> std::io::Result<u64> {
        // Keep the out-of-band flusher from fsyncing the old handle
        // while we swap segments underneath it.
        let _serialize = self.flush_lock.lock();
        let mut inner = self.inner.lock();
        Self::sync_locked(&mut inner, &self.fsyncs, &self.errors);
        let watermark = inner.next_lsn;
        let file = open_segment(&self.cfg.dir, watermark)?;
        sync_dir(&self.cfg.dir);
        inner.seg_bytes = file.metadata()?.len();
        inner.file = file;
        inner.seg_start = watermark;
        Ok(watermark)
    }

    /// Commit a snapshot: write it to `snapshot.tmp`, fsync, rename
    /// over `snapshot.bin`, then purge every segment older than the
    /// watermark (their records are all below it). Called by the kernel
    /// after [`Vfs::snapshot_cut`] produced the blob and watermark.
    pub fn install_snapshot(
        &self,
        watermark: u64,
        vfs_blob: &[u8],
        accounts_blob: &[u8],
    ) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(vfs_blob.len() + accounts_blob.len() + 32);
        put_u32(&mut payload, 1); // version
        put_u64(&mut payload, watermark);
        put_bytes(&mut payload, vfs_blob);
        put_bytes(&mut payload, accounts_blob);
        let tmp = self.cfg.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SNAP_MAGIC)?;
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(&crc32(&payload).to_le_bytes())?;
            f.write_all(&payload)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.cfg.dir.join(SNAP_NAME))?;
        sync_dir(&self.cfg.dir);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().since_snapshot = 0;
        // Older segments are now redundant; losing one early is safe
        // (the snapshot covers it), so purge failures are ignored.
        if let Ok(entries) = fs::read_dir(&self.cfg.dir) {
            for e in entries.flatten() {
                if let Some(start) = e.file_name().to_str().and_then(parse_seg_name) {
                    if start < watermark {
                        let _ = fs::remove_file(e.path());
                    }
                }
            }
        }
        sync_dir(&self.cfg.dir);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.flusher_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.flusher_thread.get() {
            t.unpark();
        }
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        Self::sync_locked(&mut inner, &self.fsyncs, &self.errors);
    }
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct ReplayOutcome {
    public: RecoveryReport,
    next_lsn: u64,
}

impl std::ops::Deref for ReplayOutcome {
    type Target = RecoveryReport;
    fn deref(&self) -> &RecoveryReport {
        &self.public
    }
}

struct DirRecovery {
    vfs: Option<Vfs>,
    accounts: Option<Vec<u8>>,
    account_ops: Vec<AccountOp>,
    report: ReplayOutcome,
}

/// A parsed `snapshot.bin`: `(watermark, vfs_blob, accounts_blob)`.
type SnapshotParts = (u64, Vec<u8>, Vec<u8>);

/// Parse `snapshot.bin`.
fn read_snapshot(path: &Path) -> std::io::Result<Option<SnapshotParts>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt WAL snapshot");
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(bad());
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload = bytes.get(16..16 + len).ok_or_else(bad)?;
    if crc32(payload) != crc {
        return Err(bad());
    }
    let mut c = Cursor::new(payload);
    let version = c.u32().ok_or_else(bad)?;
    if version != 1 {
        return Err(bad());
    }
    let watermark = c.u64().ok_or_else(bad)?;
    let vfs_blob = c.bytes().ok_or_else(bad)?;
    let accounts_blob = c.bytes().ok_or_else(bad)?;
    Ok(Some((watermark, vfs_blob, accounts_blob)))
}

/// Restore everything durable in `dir`: snapshot first, then every log
/// segment in LSN order, stopping at the first torn or corrupt frame
/// (which is then truncated away so the on-disk state is a clean
/// prefix).
fn replay_dir(dir: &Path) -> std::io::Result<DirRecovery> {
    let snap = read_snapshot(&dir.join(SNAP_NAME))?;
    let mut report = RecoveryReport::default();
    let mut accounts = None;
    let mut vfs = match snap {
        Some((watermark, vfs_blob, accounts_blob)) => {
            let v = Vfs::from_snapshot(&vfs_blob).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt WAL snapshot body")
            })?;
            report.snapshot_loaded = true;
            report.restored = true;
            report.watermark = watermark;
            accounts = Some(accounts_blob);
            Some(v)
        }
        None => None,
    };
    let mut segs: Vec<(u64, PathBuf)> = Vec::new();
    for e in fs::read_dir(dir)? {
        let e = e?;
        if let Some(start) = e.file_name().to_str().and_then(parse_seg_name) {
            segs.push((start, e.path()));
        }
    }
    segs.sort();
    let mut account_ops = Vec::new();
    let mut next_lsn = report.watermark;
    let mut stopped = false;
    for (_, path) in &segs {
        if stopped {
            // Everything past a bad frame is untrusted; drop the whole
            // later segment so the next boot sees a clean prefix.
            let _ = fs::remove_file(path);
            continue;
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let is_last_seg = path == &segs.last().expect("non-empty").1;
        let mut pos = if bytes.len() >= 8 && &bytes[..8] == SEG_MAGIC {
            8
        } else {
            // A segment without its magic never completed its first
            // write; torn at byte 0 (corrupt when later segments exist).
            if is_last_seg {
                report.torn_tail = true;
            } else {
                report.corrupt_frame = true;
            }
            truncate_file(path, 0)?;
            stopped = true;
            continue;
        };
        while pos < bytes.len() {
            let frame_end = match check_frame(&bytes, pos) {
                FrameCheck::Ok(end) => end,
                FrameCheck::Torn => {
                    // An incomplete frame running to EOF: the normal
                    // crash shape in the final segment. The same shape
                    // inside a non-final segment means records were
                    // lost before later ones were written — corruption.
                    if is_last_seg {
                        report.torn_tail = true;
                    } else {
                        report.corrupt_frame = true;
                    }
                    truncate_file(path, pos as u64)?;
                    stopped = true;
                    break;
                }
                FrameCheck::Corrupt => {
                    report.corrupt_frame = true;
                    truncate_file(path, pos as u64)?;
                    stopped = true;
                    break;
                }
            };
            let payload = &bytes[pos + 8..frame_end];
            let mut c = Cursor::new(payload);
            let (lsn, rec) = match c.vu64().and_then(|lsn| {
                WalRecord::decode(&payload[c.consumed()..]).map(|r| (lsn, r))
            }) {
                Some(x) => x,
                None => {
                    report.corrupt_frame = true;
                    truncate_file(path, pos as u64)?;
                    stopped = true;
                    break;
                }
            };
            pos = frame_end;
            if lsn < report.watermark {
                // Pre-watermark leftovers (crash between rotation and
                // purge); the snapshot already covers them.
                continue;
            }
            let v = vfs.get_or_insert_with(Vfs::new);
            match rec {
                WalRecord::AccountAdd { line } => account_ops.push(AccountOp::Add(line)),
                WalRecord::AccountRemove { name } => account_ops.push(AccountOp::Remove(name)),
                other => v.apply_record(&other),
            }
            report.replayed += 1;
            report.restored = true;
            next_lsn = lsn + 1;
        }
    }
    if let Some(v) = &vfs {
        v.finish_recovery();
    }
    Ok(DirRecovery {
        vfs: if report.restored { vfs } else { None },
        accounts,
        account_ops,
        report: ReplayOutcome {
            public: report,
            next_lsn,
        },
    })
}

enum FrameCheck {
    /// A whole valid frame starts at `pos`; its end offset.
    Ok(usize),
    /// The frame is cut short by EOF (header or payload incomplete) —
    /// the shape a power cut mid-write leaves behind.
    Torn,
    /// The frame is fully present but fails its CRC or claims an
    /// implausible length: the bytes were durable and are now wrong.
    Corrupt,
}

fn check_frame(bytes: &[u8], pos: usize) -> FrameCheck {
    let Some(header) = bytes.get(pos..pos + 8) else {
        return FrameCheck::Torn;
    };
    let len = u32::from_le_bytes(header[..4].try_into().unwrap());
    // Smallest legal payload: 1-byte LSN varint + tag + a 1-byte field.
    if !(3..=MAX_FRAME).contains(&len) {
        return FrameCheck::Corrupt;
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
        return FrameCheck::Torn;
    };
    if crc32(payload) == crc {
        FrameCheck::Ok(pos + 8 + len as usize)
    } else {
        FrameCheck::Corrupt
    }
}

fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_data()?;
    // Truncating to (or before) the magic leaves a stub that would be
    // re-reported as torn forever; drop empty segments entirely.
    if len <= SEG_MAGIC.len() as u64 {
        drop(f);
        let _ = fs::remove_file(path);
    } else if let Some(parent) = path.parent() {
        sync_dir(parent);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cred, Vfs};
    use std::sync::atomic::AtomicU32;

    const ROOT: Cred = Cred { uid: 0, gid: 0 };

    /// A fresh, empty scratch directory unique to this test run.
    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "idbox-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Open a sync-every-op WAL in `dir` and attach it to a fresh Vfs.
    fn fresh(dir: &Path) -> (Vfs, Arc<Wal>) {
        let (wal, rec) = Wal::open(WalConfig::new(dir).sync_every_op()).unwrap();
        assert!(rec.vfs.is_none(), "fresh dir must have nothing to restore");
        let wal = Arc::new(wal);
        let mut vfs = Vfs::new();
        vfs.set_wal(Some(Arc::clone(&wal)));
        (vfs, wal)
    }

    /// Reopen `dir` and return the recovered state.
    fn reopen(dir: &Path) -> Recovered {
        let (_wal, rec) = Wal::open(WalConfig::new(dir)).unwrap();
        rec
    }

    #[test]
    fn crc32_known_answer() {
        // CRC-32C check value, plus odd lengths that exercise the
        // slicing-by-8 remainder path and the hardware/software split.
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
        let bytewise = |data: &[u8]| {
            let mut c = !0u32;
            for &b in data {
                let mut x = (c ^ b as u32) & 0xFF;
                for _ in 0..8 {
                    x = if x & 1 != 0 { 0x82F6_3B78 ^ (x >> 1) } else { x >> 1 };
                }
                c = x ^ (c >> 8);
            }
            !c
        };
        for len in [1usize, 7, 8, 9, 63, 64, 65, 255] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(crc32(&data), bytewise(&data), "dispatch, len {len}");
            assert_eq!(crc32_sw(&data), bytewise(&data), "software, len {len}");
        }
    }

    /// The path of the only log segment in `dir` (asserts exactly one).
    fn only_segment(dir: &Path) -> PathBuf {
        let segs: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.starts_with("wal-")))
            .map(|e| e.path())
            .collect();
        assert_eq!(segs.len(), 1, "expected one segment, got {segs:?}");
        segs.into_iter().next().unwrap()
    }

    /// Apply a little bit of everything and record the fingerprint after
    /// every step (index 0 = untouched root).
    fn scripted_ops(vfs: &Vfs) -> Vec<String> {
        let mut fps = vec![vfs.namespace_fingerprint()];
        let mut step = |v: &Vfs| fps.push(v.namespace_fingerprint());
        vfs.mkdir(vfs.root(), "/home", 0o755, &ROOT).unwrap();
        step(vfs);
        vfs.mkdir(vfs.root(), "/home/fred", 0o700, &ROOT).unwrap();
        step(vfs);
        let f = vfs.create(vfs.root(), "/home/fred/data", 0o644, &ROOT).unwrap();
        step(vfs);
        vfs.write_at(f, 0, b"hello durable world").unwrap();
        step(vfs);
        vfs.chown(vfs.root(), "/home/fred", 1000, 1000, &ROOT).unwrap();
        step(vfs);
        vfs.chmod(vfs.root(), "/home/fred/data", 0o600, &ROOT).unwrap();
        step(vfs);
        vfs.symlink(vfs.root(), "/home/fred/data", "/home/fred/alias", &ROOT)
            .unwrap();
        step(vfs);
        vfs.link(vfs.root(), "/home/fred/data", "/home/fred/hard", &ROOT)
            .unwrap();
        step(vfs);
        vfs.rename(vfs.root(), "/home/fred/data", "/home/fred/data2", &ROOT)
            .unwrap();
        step(vfs);
        vfs.truncate(f, 5).unwrap();
        step(vfs);
        vfs.unlink(vfs.root(), "/home/fred/hard", &ROOT).unwrap();
        step(vfs);
        vfs.write_file(vfs.root(), "/home/fred/.__acl", b"globus:/O=U/CN=Fred rwl\n", &ROOT)
            .unwrap();
        step(vfs);
        fps
    }

    #[test]
    fn record_codec_roundtrip() {
        let records = vec![
            WalRecord::Create {
                dir: 1,
                name: "f".into(),
                ino: 2,
                mode: 0o644,
                uid: 10,
                gid: 20,
                now: 7,
            },
            WalRecord::Mkdir {
                dir: 1,
                name: "d".into(),
                ino: 3,
                mode: 0o755,
                uid: 0,
                gid: 0,
                now: 8,
            },
            WalRecord::Symlink {
                dir: 3,
                name: "s".into(),
                ino: 4,
                target: "/elsewhere".into(),
                uid: 1,
                gid: 2,
                now: 9,
            },
            WalRecord::Link {
                dir: 1,
                name: "h".into(),
                target: 2,
                now: 10,
            },
            WalRecord::Unlink {
                dir: 1,
                name: "h".into(),
                target: 2,
                now: 11,
            },
            WalRecord::Rmdir {
                dir: 1,
                name: "d".into(),
                target: 3,
                now: 12,
            },
            WalRecord::Rename {
                odir: 1,
                oname: "a".into(),
                ndir: 3,
                nname: "b".into(),
                src: 2,
                replaced: 5,
                replaced_is_dir: false,
                src_is_dir: true,
                now: 13,
            },
            WalRecord::Write {
                ino: 2,
                off: 4096,
                data: vec![0, 1, 2, 255],
                now: 14,
            },
            WalRecord::Truncate {
                ino: 2,
                len: 12,
                now: 15,
            },
            WalRecord::Chmod {
                ino: 2,
                mode: 0o4755,
                now: 16,
            },
            WalRecord::Chown {
                ino: 2,
                uid: 1000,
                gid: 1000,
                now: 17,
            },
            WalRecord::AccountAdd {
                line: "fred:x:1000:1000::/home/fred:/bin/sh".into(),
            },
            WalRecord::AccountRemove {
                name: "fred".into(),
            },
        ];
        for rec in records {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(WalRecord::decode(&buf).as_ref(), Some(&rec), "{rec:?}");
        }
        // Truncated payloads and unknown tags must decode to None, never panic.
        let mut buf = Vec::new();
        WalRecord::Write {
            ino: 1,
            off: 0,
            data: vec![7; 32],
            now: 1,
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(WalRecord::decode(&buf[..cut]), None, "cut at {cut}");
        }
        assert_eq!(WalRecord::decode(&[200]), None);
    }

    #[test]
    fn clean_shutdown_replays_identically() {
        let dir = tmpdir("clean");
        let (vfs, _wal) = fresh(&dir);
        let fps = scripted_ops(&vfs);
        let live = vfs.namespace_fingerprint();
        assert_eq!(&live, fps.last().unwrap());
        drop(vfs);
        let rec = reopen(&dir);
        assert!(rec.report.restored && !rec.report.torn_tail && !rec.report.corrupt_frame);
        assert_eq!(rec.vfs.unwrap().namespace_fingerprint(), live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_recovers_the_prefix() {
        let dir = tmpdir("torn");
        let (vfs, _wal) = fresh(&dir);
        scripted_ops(&vfs);
        let before_tail = vfs.namespace_fingerprint();
        // One final single-record op; the cut below tears exactly it.
        vfs.mkdir(vfs.root(), "/tail", 0o755, &ROOT).unwrap();
        drop(vfs);
        // Cut the final frame short by a few bytes: the classic torn write.
        let seg = only_segment(&dir);
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let rec = reopen(&dir);
        assert!(rec.report.torn_tail, "a cut tail must be reported as torn");
        assert!(!rec.report.corrupt_frame);
        let recovered = rec.vfs.unwrap().namespace_fingerprint();
        assert_eq!(
            recovered, before_tail,
            "losing the last record must recover exactly the previous state"
        );
        // The truncation is persisted: a second reopen sees a clean log.
        let rec2 = reopen(&dir);
        assert!(!rec2.report.torn_tail, "replay must have trimmed the torn tail");
        assert_eq!(rec2.vfs.unwrap().namespace_fingerprint(), recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_mismatch_mid_log_stops_at_the_prefix() {
        let dir = tmpdir("crc");
        let (vfs, _wal) = fresh(&dir);
        let fps = scripted_ops(&vfs);
        drop(vfs);
        // Walk the frames and flip one payload byte inside the 4th record.
        let seg = only_segment(&dir);
        let bytes = fs::read(&seg).unwrap();
        let mut pos = SEG_MAGIC.len();
        for _ in 0..3 {
            match check_frame(&bytes, pos) {
                FrameCheck::Ok(end) => pos = end,
                _ => panic!("expected a valid frame at {pos}"),
            }
        }
        let mut mutated = bytes.clone();
        mutated[pos + 12] ^= 0xFF; // inside the 4th frame's payload
        fs::write(&seg, &mutated).unwrap();
        let rec = reopen(&dir);
        assert!(rec.report.corrupt_frame, "a CRC flip must be reported as corruption");
        assert_eq!(rec.report.replayed, 3);
        let recovered = rec.vfs.unwrap().namespace_fingerprint();
        assert_eq!(recovered, fps[3], "replay must stop exactly before the bad frame");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_only_boot() {
        let dir = tmpdir("snaponly");
        let (vfs, wal) = fresh(&dir);
        let fps = scripted_ops(&vfs);
        let (blob, watermark) = vfs.snapshot_cut().unwrap();
        wal.install_snapshot(watermark, &blob, b"accounts-opaque").unwrap();
        let live = vfs.namespace_fingerprint();
        assert_eq!(&live, fps.last().unwrap());
        drop(vfs);
        drop(wal);
        let rec = reopen(&dir);
        assert!(rec.report.snapshot_loaded);
        assert_eq!(rec.report.replayed, 0, "no suffix was written after the snapshot");
        assert_eq!(rec.report.watermark, watermark);
        assert_eq!(rec.accounts.as_deref(), Some(&b"accounts-opaque"[..]));
        assert_eq!(rec.vfs.unwrap().namespace_fingerprint(), live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_plus_suffix_replay() {
        let dir = tmpdir("snapsuffix");
        let (vfs, wal) = fresh(&dir);
        scripted_ops(&vfs);
        let (blob, watermark) = vfs.snapshot_cut().unwrap();
        wal.install_snapshot(watermark, &blob, b"").unwrap();
        // Mutations after the snapshot land in the post-watermark segment.
        vfs.mkdir(vfs.root(), "/post", 0o755, &ROOT).unwrap();
        vfs.write_file(vfs.root(), "/post/extra", b"suffix bytes", &ROOT)
            .unwrap();
        vfs.unlink(vfs.root(), "/home/fred/alias", &ROOT).unwrap();
        let live = vfs.namespace_fingerprint();
        drop(vfs);
        drop(wal);
        let rec = reopen(&dir);
        assert!(rec.report.snapshot_loaded);
        assert!(rec.report.replayed > 0, "the suffix must replay on top");
        assert_eq!(rec.vfs.unwrap().namespace_fingerprint(), live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_during_concurrent_mutation() {
        let dir = tmpdir("snapconc");
        let (wal, rec) = Wal::open(WalConfig {
            dir: dir.clone(),
            sync_ops: 8,
            sync_ms: 1,
        })
        .unwrap();
        assert!(rec.vfs.is_none());
        let wal = Arc::new(wal);
        wal.start_flusher();
        let mut vfs = Vfs::new();
        vfs.set_wal(Some(Arc::clone(&wal)));
        std::thread::scope(|s| {
            for t in 0..4 {
                let vfs = &vfs;
                s.spawn(move || {
                    let home = format!("/w{t}");
                    vfs.mkdir(vfs.root(), &home, 0o755, &ROOT).unwrap();
                    for i in 0..40 {
                        let p = format!("{home}/f{i}");
                        vfs.write_file(vfs.root(), &p, format!("{t}:{i}").as_bytes(), &ROOT)
                            .unwrap();
                        if i % 3 == 0 {
                            vfs.unlink(vfs.root(), &p, &ROOT).unwrap();
                        }
                    }
                });
            }
            // Snapshot repeatedly while the writers run.
            let vfs = &vfs;
            let wal2 = Arc::clone(&wal);
            s.spawn(move || {
                for _ in 0..5 {
                    let (blob, watermark) = vfs.snapshot_cut().unwrap();
                    wal2.install_snapshot(watermark, &blob, b"").unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        });
        let live = vfs.namespace_fingerprint();
        assert!(wal.stats().snapshots >= 5);
        drop(vfs);
        drop(wal);
        let rec = reopen(&dir);
        assert!(rec.report.snapshot_loaded);
        assert_eq!(
            rec.vfs.unwrap().namespace_fingerprint(),
            live,
            "snapshots cut mid-storm must still compose with the suffix"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_amortizes_fsyncs() {
        let dir = tmpdir("group");
        let (wal, _rec) = Wal::open(WalConfig {
            dir: dir.clone(),
            sync_ops: 64,
            sync_ms: 1000, // effectively: only the sync_ops threshold fires
        })
        .unwrap();
        let wal = Arc::new(wal);
        let mut vfs = Vfs::new();
        vfs.set_wal(Some(Arc::clone(&wal)));
        for i in 0..256 {
            vfs.create(vfs.root(), &format!("/f{i}"), 0o644, &ROOT).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 256);
        assert!(
            stats.fsyncs <= stats.appends / 32,
            "group commit must amortize: {} fsyncs for {} appends",
            stats.fsyncs,
            stats.appends
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_crash_budget_tears_the_tail() {
        let dir = tmpdir("budget");
        let (vfs, wal) = fresh(&dir);
        vfs.mkdir(vfs.root(), "/a", 0o755, &ROOT).unwrap();
        let before = vfs.namespace_fingerprint();
        // Allow 5 more bytes to reach the disk, then "lose power".
        wal.set_crash_after_bytes(5);
        vfs.mkdir(vfs.root(), "/b", 0o755, &ROOT).unwrap();
        vfs.mkdir(vfs.root(), "/c", 0o755, &ROOT).unwrap();
        drop(vfs);
        drop(wal);
        let rec = reopen(&dir);
        assert!(rec.report.torn_tail);
        assert_eq!(
            rec.vfs.unwrap().namespace_fingerprint(),
            before,
            "a torn partial frame must roll back to the last durable op"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_directory_restores_nothing() {
        let dir = tmpdir("fresh");
        let rec = reopen(&dir);
        assert!(!rec.report.restored);
        assert!(rec.vfs.is_none());
        assert!(rec.accounts.is_none());
        assert!(rec.account_ops.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn account_records_replay_in_order() {
        let dir = tmpdir("accounts");
        let (wal, _) = Wal::open(WalConfig::new(&dir).sync_every_op()).unwrap();
        wal.append(WalRecordRef::AccountAdd {
            line: "fred:x:1000:1000::/home/fred:/bin/sh",
        });
        wal.append(WalRecordRef::AccountAdd {
            line: "barney:x:1001:1001::/home/barney:/bin/sh",
        });
        wal.append(WalRecordRef::AccountRemove {
            name: "fred",
        });
        drop(wal);
        let rec = reopen(&dir);
        assert_eq!(
            rec.account_ops,
            vec![
                AccountOp::Add("fred:x:1000:1000::/home/fred:/bin/sh".into()),
                AccountOp::Add("barney:x:1001:1001::/home/barney:/bin/sh".into()),
                AccountOp::Remove("fred".into()),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
