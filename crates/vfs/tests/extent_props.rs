//! Extent-equivalence property suite: the chunked, `Arc`-backed file
//! representation must be observationally identical to a flat
//! `Vec<u8>` model under random data-op sequences.
//!
//! Every sequence mixes `write_at` / `read_into` / `truncate` /
//! `append` with offsets and lengths chosen to straddle chunk
//! boundaries (the Vfs under test uses a deliberately tiny chunk so a
//! few hundred bytes cross several), and after every op the model and
//! the real file must agree on size, on every probed byte range, and
//! on the whole contents via both the flat (`file_data`) and
//! zero-copy (`file_extents`) read paths. Honors `IDBOX_PROP_SEED`
//! via the testkit proptest shim, like the rest of the suite.

use idbox_vfs::{Cred, Vfs};
use proptest::prelude::*;

const ROOT: Cred = Cred::ROOT;

/// Tiny chunk so ordinary op sizes cross chunk boundaries constantly.
const TEST_CHUNK: usize = 512;

/// A random data-plane operation on one file.
#[derive(Debug, Clone)]
enum DataOp {
    Write { off: u64, data: Vec<u8> },
    Truncate { len: u64 },
    Append { data: Vec<u8> },
    Read { off: u64, len: usize },
}

fn data_op() -> impl Strategy<Value = DataOp> {
    // Offsets/lengths up to a few chunks, biased around the 512-byte
    // chunk edges by sheer density of cases.
    prop_oneof![
        (0u64..2048, proptest::collection::vec(any::<u8>(), 0..1600))
            .prop_map(|(off, data)| DataOp::Write { off, data }),
        (0u64..2600).prop_map(|len| DataOp::Truncate { len }),
        proptest::collection::vec(any::<u8>(), 0..1100).prop_map(|data| DataOp::Append { data }),
        (0u64..2600, 0usize..1600).prop_map(|(off, len)| DataOp::Read { off, len }),
    ]
}

/// The reference implementation: the flat `Vec<u8>` semantics the old
/// `Payload::File(Vec<u8>)` representation had.
#[derive(Default)]
struct FlatModel {
    data: Vec<u8>,
}

impl FlatModel {
    fn write_at(&mut self, off: usize, data: &[u8]) {
        let end = off + data.len();
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[off..end].copy_from_slice(data);
    }

    fn truncate(&mut self, len: usize) {
        self.data.resize(len, 0);
    }

    fn read(&self, off: usize, len: usize) -> Vec<u8> {
        if off >= self.data.len() {
            return Vec::new();
        }
        let n = len.min(self.data.len() - off);
        self.data[off..off + n].to_vec()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked extents ≡ flat Vec over random op sequences.
    #[test]
    fn chunked_file_matches_flat_model(
        ops in proptest::collection::vec(data_op(), 1..40),
    ) {
        let mut v = Vfs::new();
        v.set_chunk_size(TEST_CHUNK);
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        let mut model = FlatModel::default();

        for op in &ops {
            match op {
                DataOp::Write { off, data } => {
                    prop_assert_eq!(v.write_at(ino, *off, data).unwrap(), data.len());
                    model.write_at(*off as usize, data);
                }
                DataOp::Truncate { len } => {
                    v.truncate(ino, *len).unwrap();
                    model.truncate(*len as usize);
                }
                DataOp::Append { data } => {
                    let at = v.fstat(ino).unwrap().size;
                    prop_assert_eq!(v.write_at(ino, at, data).unwrap(), data.len());
                    model.write_at(at as usize, data);
                }
                DataOp::Read { off, len } => {
                    let mut buf = vec![0u8; *len];
                    let n = v.read_into(ino, *off, &mut buf).unwrap();
                    prop_assert_eq!(&buf[..n], &model.read(*off as usize, *len)[..]);
                    // The zero-copy path must agree byte for byte with
                    // the copying path on the same window.
                    let x = v.file_extents(ino, *off, *len).unwrap();
                    prop_assert_eq!(x.total, n);
                    prop_assert_eq!(x.to_vec(), buf[..n].to_vec());
                }
            }
            // After every op: size and full contents agree on both
            // read paths.
            prop_assert_eq!(v.fstat(ino).unwrap().size as usize, model.data.len());
            prop_assert_eq!(v.file_data(ino).unwrap(), model.data.clone());
            let whole = v.file_extents(ino, 0, usize::MAX).unwrap();
            prop_assert_eq!(whole.total, model.data.len());
            prop_assert_eq!(whole.to_vec(), model.data.clone());
        }
    }

    /// Extents snapshot: bytes borrowed before a write never change,
    /// even as the file is rewritten/truncated under them (CoW).
    #[test]
    fn held_extents_are_immutable_snapshots(
        initial in proptest::collection::vec(any::<u8>(), 1..2000),
        ops in proptest::collection::vec(data_op(), 1..12),
    ) {
        let mut v = Vfs::new();
        v.set_chunk_size(TEST_CHUNK);
        let ino = v.create(v.root(), "/f", 0o644, &ROOT).unwrap();
        v.write_at(ino, 0, &initial).unwrap();
        let snapshot = v.file_extents(ino, 0, usize::MAX).unwrap();
        for op in &ops {
            match op {
                DataOp::Write { off, data } => { v.write_at(ino, *off, data).unwrap(); }
                DataOp::Truncate { len } => { v.truncate(ino, *len).unwrap(); }
                DataOp::Append { data } => {
                    let at = v.fstat(ino).unwrap().size;
                    v.write_at(ino, at, data).unwrap();
                }
                DataOp::Read { .. } => {}
            }
        }
        prop_assert_eq!(snapshot.to_vec(), initial);
    }
}
