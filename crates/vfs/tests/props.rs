//! Property-based invariants of the filesystem under random operation
//! sequences: resolution never escapes the root, link counts stay
//! consistent, and inode storage is neither leaked nor double-freed.

use idbox_types::Errno;
use idbox_vfs::{Cred, FileKind, Vfs};
use proptest::prelude::*;

const ROOT: Cred = Cred::ROOT;

/// A random filesystem operation over a small namespace.
#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Mkdir(String),
    Unlink(String),
    Rmdir(String),
    Link(String, String),
    Symlink(String, String),
    Rename(String, String),
    Write(String, Vec<u8>),
}

fn small_path() -> impl Strategy<Value = String> {
    // Paths over a tiny alphabet so collisions (EEXIST, ENOENT...) happen.
    proptest::collection::vec("[abc]", 1..4)
        .prop_map(|parts| format!("/{}", parts.join("/")))
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        small_path().prop_map(Op::Create),
        small_path().prop_map(Op::Mkdir),
        small_path().prop_map(Op::Unlink),
        small_path().prop_map(Op::Rmdir),
        (small_path(), small_path()).prop_map(|(a, b)| Op::Link(a, b)),
        (small_path(), small_path()).prop_map(|(a, b)| Op::Symlink(a, b)),
        (small_path(), small_path()).prop_map(|(a, b)| Op::Rename(a, b)),
        (small_path(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(p, d)| Op::Write(p, d)),
    ]
}

fn apply(v: &mut Vfs, op: &Op) {
    let root = v.root();
    // Every op may legitimately fail; what matters is that failures are
    // clean Errno values and the invariants below keep holding.
    let _ = match op {
        Op::Create(p) => v.create(root, p, 0o644, &ROOT).map(|_| ()),
        Op::Mkdir(p) => v.mkdir(root, p, 0o755, &ROOT).map(|_| ()),
        Op::Unlink(p) => v.unlink(root, p, &ROOT),
        Op::Rmdir(p) => v.rmdir(root, p, &ROOT),
        Op::Link(a, b) => v.link(root, a, b, &ROOT),
        Op::Symlink(a, b) => v.symlink(root, a, b, &ROOT).map(|_| ()),
        Op::Rename(a, b) => v.rename(root, a, b, &ROOT),
        Op::Write(p, d) => v.write_file(root, p, d, &ROOT).map(|_| ()),
    };
}

/// Walk the whole tree and verify structural invariants.
fn check_invariants(v: &mut Vfs) {
    let root = v.root();
    let mut stack = vec!["/".to_string()];
    // Hard links may alias files — and symlinks — so the exact statement
    // is about *distinct inodes*: everything live is reachable and vice
    // versa.
    let mut distinct = std::collections::BTreeSet::new();
    while let Some(dir) = stack.pop() {
        let dir_ino = v.stat(root, &dir, true, &ROOT).unwrap().ino;
        distinct.insert(dir_ino);
        let entries = v.readdir(root, &dir, &ROOT).expect("readdir of live dir");
        // "." must point at the dir itself, ".." at a live dir.
        let dot = entries.iter().find(|e| e.name == ".").expect("has .");
        let self_ino = v.stat(root, &dir, true, &ROOT).unwrap().ino;
        assert_eq!(dot.ino, self_ino, "dot entry of {dir} is wrong");
        assert!(entries.iter().any(|e| e.name == ".."), "{dir} lacks ..");
        for e in entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            let child = format!(
                "{}/{}",
                if dir == "/" { "" } else { &dir },
                e.name
            );
            match e.kind {
                FileKind::Dir => stack.push(child),
                FileKind::File => {
                    distinct.insert(e.ino);
                    let st = v.stat(root, &child, false, &ROOT).unwrap();
                    assert!(st.nlink >= 1, "file {child} with zero nlink");
                }
                FileKind::Symlink => {
                    distinct.insert(e.ino);
                    // Resolution of the link never panics; it cleanly
                    // succeeds or fails with an Errno.
                    match v.stat(root, &child, true, &ROOT) {
                        Ok(_) | Err(Errno::ENOENT) | Err(Errno::ELOOP)
                        | Err(Errno::ENOTDIR) | Err(Errno::EACCES) => {}
                        Err(e) => panic!("unexpected errno {e} resolving {child}"),
                    }
                }
            }
        }
    }
    // Exact accounting: the live inode count equals the number of
    // distinct reachable inodes — nothing leaked, nothing lost.
    assert_eq!(
        v.live_inodes(),
        distinct.len(),
        "live inodes != distinct reachable inodes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(op(), 1..60)) {
        let mut v = Vfs::new();
        for op in &ops {
            apply(&mut v, op);
        }
        check_invariants(&mut v);
    }

    #[test]
    fn resolution_never_escapes_root(
        ops in proptest::collection::vec(op(), 1..30),
        probe in proptest::collection::vec("[abc.]{1,4}", 1..6),
    ) {
        let mut v = Vfs::new();
        for op in &ops {
            apply(&mut v, op);
        }
        // A path with arbitrary ".." runs must never produce an inode
        // outside the tree (it either resolves to something reachable or
        // fails cleanly).
        let wild = format!("/{}", probe.join("/.."));
        match v.resolve(v.root(), &wild, true, &Cred::ROOT) {
            Ok(ino) => {
                // The ino must be reachable from the root by construction;
                // at minimum fstat works and the kind is sane.
                let st = v.fstat(ino).unwrap();
                prop_assert!(matches!(
                    st.kind,
                    FileKind::Dir | FileKind::File | FileKind::Symlink
                ));
            }
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    Errno::ENOENT | Errno::ENOTDIR | Errno::ELOOP | Errno::EACCES
                ));
            }
        }
    }

    #[test]
    fn write_then_read_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        off in 0u64..1024,
    ) {
        let v = Vfs::new();
        let ino = v.create(v.root(), "/f", 0o644, &Cred::ROOT).unwrap();
        v.write_at(ino, off, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        let n = v.read_into(ino, off, &mut buf).unwrap();
        prop_assert_eq!(n, data.len());
        prop_assert_eq!(&buf, &data);
        // Gap is zero-filled.
        let st = v.fstat(ino).unwrap();
        prop_assert_eq!(st.size, off + data.len() as u64);
    }

    /// The dentry cache is invisible: a cached filesystem and an
    /// uncached one driven through the same random interleaving of
    /// rename/unlink/link/symlink/mkdir/create answer every resolution
    /// probe identically — including symlink loops (the fixed prelude
    /// plants one), dangling symlinks, and negative lookups — and the
    /// cached instance answers the same twice in a row (the second
    /// probe is the warm-cache path).
    #[test]
    fn cached_and_uncached_resolution_agree(
        ops in proptest::collection::vec(op(), 1..30),
        probes in proptest::collection::vec("[abc.]{1,4}(/[abc.]{1,4}){0,2}", 1..5),
    ) {
        let mut cached = Vfs::new();
        let mut uncached = Vfs::new();
        uncached.set_dentry_cache(false);
        for v in [&mut cached, &mut uncached] {
            let root = v.root();
            // Symlink loop and dangling link, guaranteed present.
            v.symlink(root, "/loopb", "/loopa", &ROOT).unwrap();
            v.symlink(root, "/loopa", "/loopb", &ROOT).unwrap();
            v.symlink(root, "/nowhere/x", "/dangle", &ROOT).unwrap();
        }
        let mut all_probes: Vec<String> =
            probes.iter().map(|p| format!("/{p}")).collect();
        all_probes.push("/loopa".into());
        all_probes.push("/dangle".into());
        let visitor = Cred::new(1000, 1000);
        for op in &ops {
            apply(&mut cached, op);
            apply(&mut uncached, op);
            for p in &all_probes {
                for cred in [&ROOT, &visitor] {
                    for follow in [true, false] {
                        let want = uncached.resolve(uncached.root(), p, follow, cred);
                        // Twice: the first fill may warm the cache, the
                        // second must hit it — both must agree.
                        prop_assert_eq!(
                            cached.resolve(cached.root(), p, follow, cred),
                            want, "resolve({}, follow={})", p, follow
                        );
                        prop_assert_eq!(
                            cached.resolve(cached.root(), p, follow, cred),
                            want, "warm resolve({}, follow={})", p, follow
                        );
                    }
                    let want = uncached.resolve_entry(uncached.root(), p, cred);
                    prop_assert_eq!(
                        cached.resolve_entry(cached.root(), p, cred),
                        want.clone(), "resolve_entry({})", p
                    );
                    prop_assert_eq!(
                        cached.resolve_entry(cached.root(), p, cred),
                        want, "warm resolve_entry({})", p
                    );
                }
            }
        }
        // The probing above must actually have exercised the cache.
        let (hits, _) = cached.dentry_stats();
        prop_assert!(hits > 0, "probes never hit the dentry cache");
    }

    #[test]
    fn unlink_frees_exactly_when_last_link_dies(n_links in 1usize..6) {
        let v = Vfs::new();
        let before = v.live_inodes();
        v.create(v.root(), "/f0", 0o644, &Cred::ROOT).unwrap();
        for i in 1..n_links {
            v.link(v.root(), "/f0", &format!("/f{i}"), &Cred::ROOT).unwrap();
        }
        prop_assert_eq!(v.live_inodes(), before + 1);
        for i in 0..n_links {
            v.unlink(v.root(), &format!("/f{i}"), &Cred::ROOT).unwrap();
            let expect = if i + 1 == n_links { before } else { before + 1 };
            prop_assert_eq!(v.live_inodes(), expect);
        }
    }
}
