//! Crash-point recovery properties for the write-ahead log.
//!
//! The durability contract (DESIGN.md, "Durability model"): however
//! the log dies — torn final record, a crash budget that silently
//! swallows writes, a truncation at *any* byte offset — replay must
//! yield a namespace equivalent to some prefix of the successful-op
//! stream. Never a mixed state, never an op applied out of order, and
//! never a fail-open ACL: a recovered `.__acl` file must hold exactly
//! the bytes it held at the matched prefix, because a half-recovered
//! ACL that grants more than any real past state did would turn a
//! crash into a privilege escalation.
//!
//! Equivalence is checked with `Vfs::namespace_fingerprint()`, which
//! folds every path, inode number, mode, owner, link count, timestamp,
//! and file CRC into one deterministic string. Each generated op emits
//! at most one WAL record, so the fingerprint after each op enumerates
//! every legal recovery target.
//!
//! Uses the `idbox-testkit` runner, so `IDBOX_PROP_SEED` (pinned in
//! `ci.sh`) reproduces a failing case exactly.

use idbox_vfs::{Cred, Vfs, Wal, WalConfig};
use proptest::{run_cases, PropError, ProptestConfig, TestRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

const ROOT: Cred = Cred { uid: 0, gid: 0 };
const NDIRS: u64 = 3;
const NFILES: u64 = 5;
const OPS_PER_CASE: u64 = 28;

static SEQ: AtomicU32 = AtomicU32::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "idbox-walprop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn dir_path(i: u64) -> String {
    format!("/d{i}")
}

fn file_path(rng: &mut TestRng) -> String {
    let f = rng.below(NFILES);
    if rng.bool() {
        format!("/f{f}")
    } else {
        format!("/d{}/f{f}", rng.below(NDIRS))
    }
}

/// Apply one random namespace op. Every arm issues at most one WAL
/// record when it succeeds (that is why `write_file`, which logs
/// create + write, is not drawn here); failures log nothing. The
/// `.__acl` arm stands in for idbox-core ACL storage: those are the
/// files whose recovered bytes the fail-open check pins.
fn random_op(vfs: &Vfs, rng: &mut TestRng) {
    let root = vfs.root();
    match rng.below(12) {
        0 => {
            let _ = vfs.mkdir(root, &dir_path(rng.below(NDIRS)), 0o755, &ROOT);
        }
        1 => {
            let _ = vfs.create(root, &file_path(rng), 0o644, &ROOT);
        }
        2 => {
            if let Ok(ino) = vfs.resolve(root, &file_path(rng), true, &ROOT) {
                let byte = rng.below(256) as u8;
                let n = rng.in_range(1, 48) as usize;
                let _ = vfs.write_at(ino, rng.below(64), &vec![byte; n]);
            }
        }
        3 => {
            if let Ok(ino) = vfs.resolve(root, &file_path(rng), true, &ROOT) {
                let _ = vfs.truncate(ino, rng.below(40));
            }
        }
        4 => {
            let _ = vfs.chmod(root, &file_path(rng), rng.below(0o7777) as u16, &ROOT);
        }
        5 => {
            let id = rng.in_range(1000, 1004) as u32;
            let _ = vfs.chown(root, &file_path(rng), id, id, &ROOT);
        }
        6 => {
            let target = file_path(rng);
            let _ = vfs.symlink(root, &target, &format!("/ln{}", rng.below(NFILES)), &ROOT);
        }
        7 => {
            let _ = vfs.link(root, &file_path(rng), &file_path(rng), &ROOT);
        }
        8 => {
            let _ = vfs.unlink(root, &file_path(rng), &ROOT);
        }
        9 => {
            let _ = vfs.rmdir(root, &dir_path(rng.below(NDIRS)), &ROOT);
        }
        10 => {
            let _ = vfs.rename(root, &file_path(rng), &file_path(rng), &ROOT);
        }
        _ => {
            // ACL mutation, one record per draw so every intermediate
            // ACL state is a legal prefix state: the first draw creates
            // the directory's empty `.__acl`, later draws overwrite its
            // head bytes in place.
            let dir = dir_path(rng.below(NDIRS));
            let acl = format!("{dir}/.__acl");
            let grant = format!("globus:/CN=User{} rwl\n", rng.below(4));
            match vfs.resolve(root, &acl, true, &ROOT) {
                Ok(ino) => {
                    let _ = vfs.write_at(ino, 0, grant.as_bytes());
                }
                Err(_) => {
                    let _ = vfs.create(root, &acl, 0o600, &ROOT);
                }
            }
        }
    }
}

/// A sync-every-op WAL in `dir` with a fresh namespace attached.
fn fresh(dir: &Path) -> (Arc<Wal>, Vfs) {
    let (wal, recovered) = Wal::open(WalConfig::new(dir).sync_every_op()).unwrap();
    assert!(recovered.vfs.is_none(), "fresh dir must hold no state");
    let wal = Arc::new(wal);
    let mut vfs = Vfs::new();
    vfs.set_wal(Some(Arc::clone(&wal)));
    (wal, vfs)
}

/// Replay whatever is in `dir` and fingerprint the result (a missing
/// namespace replays as the empty root-only namespace).
fn recover_fingerprint(dir: &Path) -> String {
    let (_wal, recovered) = Wal::open(WalConfig::new(dir)).unwrap();
    recovered.vfs.unwrap_or_default().namespace_fingerprint()
}

/// The fail-open check: every `.__acl` line in the recovered
/// fingerprint (path, inode, mode, owner, and — decisively — content
/// CRC) must appear verbatim in the matched prefix state. A recovered
/// ACL can only ever be an ACL some real past state had.
fn assert_no_fail_open(recovered: &str, matched_prefix: &str) -> Result<(), PropError> {
    for line in recovered.lines().filter(|l| l.contains(".__acl")) {
        if !matched_prefix.lines().any(|p| p == line) {
            return Err(PropError::fail(format!(
                "fail-open ACL state after crash recovery:\n  recovered: {line}\n\
                 not present in the matched prefix"
            )));
        }
    }
    Ok(())
}

/// Run `OPS_PER_CASE` random ops against a WAL'd namespace, returning
/// the fingerprint after every op (index 0 = the empty namespace). Ops
/// that fail add a duplicate entry, which is harmless: the set still
/// enumerates exactly the states some record prefix reaches.
fn run_script(vfs: &Vfs, rng: &mut TestRng) -> Vec<String> {
    let mut states = vec![vfs.namespace_fingerprint()];
    for _ in 0..OPS_PER_CASE {
        random_op(vfs, rng);
        states.push(vfs.namespace_fingerprint());
    }
    states
}

/// The log segments in `dir`, in LSN order.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segs.sort();
    segs
}

/// Copy the durable state into a fresh directory, chopping the last
/// log segment at `cut` bytes — a crash frozen at an arbitrary moment
/// of an in-flight write.
fn copy_with_cut(src: &Path, cut_fraction: u64) -> PathBuf {
    let dst = tmpdir("cut");
    for entry in std::fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
    }
    let segs = segments(&dst);
    let last = segs.last().expect("a log segment always exists");
    let len = std::fs::metadata(last).unwrap().len();
    let cut = (len * cut_fraction.min(1000)) / 1000;
    let f = std::fs::OpenOptions::new().write(true).open(last).unwrap();
    f.set_len(cut).unwrap();
    dst
}

#[test]
fn truncation_at_any_byte_recovers_a_prefix() {
    run_cases(
        ProptestConfig::with_cases(24),
        "wal_props::truncation_at_any_byte",
        |rng| {
            let dir = tmpdir("trunc");
            let (wal, vfs) = fresh(&dir);
            let states = run_script(&vfs, rng);
            wal.sync();
            drop(vfs);
            drop(wal);
            // Eight independent crash points across the log, from
            // "nothing survived" through "everything survived".
            for _ in 0..8 {
                let cut_dir = copy_with_cut(&dir, rng.below(1001));
                let got = recover_fingerprint(&cut_dir);
                let Some(matched) = states.iter().find(|s| **s == got) else {
                    std::fs::remove_dir_all(&cut_dir).ok();
                    std::fs::remove_dir_all(&dir).ok();
                    return Err(PropError::fail(format!(
                        "recovered namespace matches no prefix state:\n{got}"
                    )));
                };
                assert_no_fail_open(&got, matched)?;
                std::fs::remove_dir_all(&cut_dir).ok();
            }
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}

#[test]
fn write_side_crash_budget_recovers_a_prefix() {
    run_cases(
        ProptestConfig::with_cases(24),
        "wal_props::write_side_crash_budget",
        |rng| {
            // Reference run: the op stream with no crash, enumerating
            // the legal prefix states. Re-seeding a second generator
            // from the same draw replays the identical stream below.
            let budget = rng.below(4096);
            let seed = rng.next_u64();
            let ref_dir = tmpdir("ref");
            let (ref_wal, ref_vfs) = fresh(&ref_dir);
            let mut rng_a = TestRng::new(seed);
            let states = run_script(&ref_vfs, &mut rng_a);
            drop(ref_vfs);
            drop(ref_wal);
            // Crashing run: identical ops, but the log silently stops
            // persisting after `budget` bytes — the write-side shape of
            // a power cut, torn final record included.
            let crash_dir = tmpdir("crash");
            let (crash_wal, crash_vfs) = fresh(&crash_dir);
            crash_wal.set_crash_after_bytes(budget);
            let mut rng_b = TestRng::new(seed);
            let _ = run_script(&crash_vfs, &mut rng_b);
            drop(crash_vfs);
            drop(crash_wal);
            let got = recover_fingerprint(&crash_dir);
            let found = states.iter().find(|s| **s == got);
            let outcome = match found {
                Some(matched) => assert_no_fail_open(&got, matched),
                None => Err(PropError::fail(format!(
                    "post-crash namespace matches no prefix state \
                     (budget {budget}):\n{got}"
                ))),
            };
            std::fs::remove_dir_all(&ref_dir).ok();
            std::fs::remove_dir_all(&crash_dir).ok();
            outcome
        },
    );
}

#[test]
fn snapshot_mid_stream_keeps_prefix_equivalence() {
    run_cases(
        ProptestConfig::with_cases(16),
        "wal_props::snapshot_mid_stream",
        |rng| {
            let dir = tmpdir("snap");
            let (wal, vfs) = fresh(&dir);
            let cut_at = rng.in_range(4, OPS_PER_CASE);
            let mut states = vec![vfs.namespace_fingerprint()];
            let mut snap_index = 0usize;
            for i in 0..OPS_PER_CASE {
                random_op(&vfs, rng);
                states.push(vfs.namespace_fingerprint());
                if i == cut_at {
                    // Snapshot + truncate mid-stream, like the server's
                    // auto-snapshot thread (empty account blob: this
                    // test lives below the kernel).
                    let (blob, watermark) = vfs.snapshot_cut().unwrap();
                    wal.install_snapshot(watermark, &blob, &[]).unwrap();
                    snap_index = states.len() - 1;
                }
            }
            wal.sync();
            drop(vfs);
            drop(wal);
            // A crash after the snapshot recovers the snapshot state or
            // later — never anything older (the truncated history) and
            // never a non-prefix state.
            for _ in 0..6 {
                let cut_dir = copy_with_cut(&dir, rng.below(1001));
                let got = recover_fingerprint(&cut_dir);
                // The snapshot truncated everything older, so the
                // recovered state must be one the namespace reached at
                // or after the snapshot point.
                let Some(matched) = states[snap_index..].iter().find(|s| **s == got) else {
                    std::fs::remove_dir_all(&cut_dir).ok();
                    std::fs::remove_dir_all(&dir).ok();
                    return Err(PropError::fail(format!(
                        "recovered state is pre-snapshot or matches no \
                         prefix (snapshot at index {snap_index}):\n{got}"
                    )));
                };
                assert_no_fail_open(&got, matched)?;
                std::fs::remove_dir_all(&cut_dir).ok();
            }
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}
