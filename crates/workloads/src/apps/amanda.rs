//! AMANDA: gamma-ray telescope simulation.
//!
//! Shape: read a small configuration, then a long Monte-Carlo loop
//! dominated by compute, periodically appending large (8 KiB) event
//! blocks to an output file. Paper-reported overhead: **+1.1 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// Event-generation steps at bench scale.
const STEPS: u64 = 3000;
/// Compute units per step (photon propagation).
const COMPUTE_PER_STEP: u64 = 54_000;
/// Event block size.
const BLOCK: usize = 8192;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "amanda",
        description: "gamma-ray telescope simulation",
        paper_overhead_pct: 1.1,
        prepare,
        run,
    }
}

fn prepare(ctx: &mut GuestCtx<'_>, _scale: Scale) {
    ctx.write_file("amanda.cfg", b"strings=19\ndepth=1500m\nmedium=ice\n")
        .expect("stage config");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    let Ok(cfg) = ctx.read_file("amanda.cfg") else {
        return 1;
    };
    let mut seed = cfg.len() as u64;
    let Ok(out) = ctx.open("amanda.out", OpenFlags::append_create(), 0o644) else {
        return 1;
    };
    let mut block = vec![0u8; BLOCK];
    for step in 0..scale.steps(STEPS) {
        // Propagate photons through the ice.
        seed = compute(COMPUTE_PER_STEP) ^ seed.rotate_left(9) ^ step;
        // Every step emits one event block.
        fill_data(seed, &mut block);
        if ctx.write(out, &block).is_err() {
            return 1;
        }
    }
    if ctx.close(out).is_err() {
        return 1;
    }
    // Summary record.
    let summary = format!("events={} seed={seed:016x}\n", scale.steps(STEPS));
    if ctx.write_file("amanda.summary", summary.as_bytes()).is_err() {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn produces_event_blocks() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "amanda").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let st = ctx.stat("/tmp/amanda.out").unwrap();
        let steps = Scale::test().steps(STEPS);
        assert_eq!(st.size, steps * BLOCK as u64);
        assert!(ctx.read_file("/tmp/amanda.summary").is_ok());
    }
}
