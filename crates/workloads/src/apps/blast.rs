//! BLAST: genomic database search.
//!
//! Shape: scan a pre-staged sequence database with large sequential
//! reads, scoring each block against the query (moderate compute per
//! block), appending compact match records. More I/O-bound than the
//! simulations. Paper-reported overhead: **+5.2 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// Database blocks at bench scale.
const DB_BLOCKS: u64 = 24_000;
/// Block size (the paper's applications do primarily large-block I/O).
const BLOCK: usize = 8192;
/// Compute units per scanned block (alignment scoring).
const COMPUTE_PER_BLOCK: u64 = 5_200;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "blast",
        description: "genomic database search",
        paper_overhead_pct: 5.2,
        prepare,
        run,
    }
}

fn prepare(ctx: &mut GuestCtx<'_>, scale: Scale) {
    // Stage the database: nr-style blocks of packed sequences.
    let blocks = scale.steps(DB_BLOCKS);
    let fd = ctx
        .open("blast.db", OpenFlags::wronly_create_trunc(), 0o644)
        .expect("create db");
    let mut block = vec![0u8; BLOCK];
    for i in 0..blocks {
        fill_data(i * 77 + 1, &mut block);
        ctx.write(fd, &block).expect("stage db block");
    }
    ctx.close(fd).expect("close db");
    ctx.write_file("query.fa", b">query\nMKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ\n")
        .expect("stage query");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    let Ok(query) = ctx.read_file("query.fa") else {
        return 1;
    };
    let Ok(db) = ctx.open("blast.db", OpenFlags::rdonly(), 0) else {
        return 1;
    };
    let Ok(hits) = ctx.open("blast.hits", OpenFlags::wronly_create_trunc(), 0o644) else {
        return 1;
    };
    let mut buf = vec![0u8; BLOCK];
    let mut block_no = 0u64;
    let mut best = 0u64;
    loop {
        let n = match ctx.read(db, &mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => return 1,
        };
        // Score the block against the query.
        let score = compute(COMPUTE_PER_BLOCK) ^ (buf[0] as u64) ^ (query.len() as u64);
        if score > best {
            best = score;
            let record = format!("hit block={} score={:016x} len={}\n", block_no, score, n);
            if ctx.write(hits, record.as_bytes()).is_err() {
                return 1;
            }
        }
        block_no += 1;
    }
    if ctx.close(db).is_err() || ctx.close(hits).is_err() {
        return 1;
    }
    let _ = scale;
    if block_no == 0 {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn scans_whole_database() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "blast").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let hits = ctx.read_file("/tmp/blast.hits").unwrap();
        assert!(!hits.is_empty());
        // The read mix should dominate the syscall profile.
        let k = kernel.lock();
        assert!(k.stats.count("read") >= Scale::test().steps(DB_BLOCKS));
    }
}
