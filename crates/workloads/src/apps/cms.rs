//! CMS: high-energy physics apparatus simulation.
//!
//! Shape: read detector geometry once, then simulate particle events —
//! heavy compute per event, one 8 KiB event record written per event.
//! Paper-reported overhead: **+2.1 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// Simulated events at bench scale.
const EVENTS: u64 = 4000;
/// Compute units per event (tracking through the detector).
const COMPUTE_PER_EVENT: u64 = 77_000;
/// Event record size.
const BLOCK: usize = 8192;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "cms",
        description: "high-energy physics detector simulation",
        paper_overhead_pct: 2.1,
        prepare,
        run,
    }
}

fn prepare(ctx: &mut GuestCtx<'_>, _scale: Scale) {
    // Geometry description, read once at startup.
    let mut geometry = vec![0u8; 64 * 1024];
    fill_data(0xCE05, &mut geometry);
    ctx.write_file("cms.geometry", &geometry).expect("stage geometry");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    let Ok(geometry) = ctx.read_file("cms.geometry") else {
        return 1;
    };
    let Ok(out) = ctx.open("cms.events", OpenFlags::wronly_create_trunc(), 0o644) else {
        return 1;
    };
    let mut record = vec![0u8; BLOCK];
    let mut state = geometry.len() as u64;
    for event in 0..scale.steps(EVENTS) {
        state = compute(COMPUTE_PER_EVENT) ^ state.rotate_left(7) ^ event;
        fill_data(state, &mut record);
        if ctx.write(out, &record).is_err() {
            return 1;
        }
    }
    if ctx.close(out).is_err() {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn one_record_per_event() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "cms").unwrap();
        let mut sup = Supervisor::direct(kernel);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let st = ctx.stat("/tmp/cms.events").unwrap();
        assert_eq!(st.size, Scale::test().steps(EVENTS) * BLOCK as u64);
    }
}
