//! HF: Hartree-Fock nucleic/electronic interaction simulation.
//!
//! Shape: an iterative self-consistent-field solver — modest compute per
//! iteration with *frequent medium-sized* I/O: integral blocks written
//! and re-read each sweep, plus periodic checkpoints. The chattiest of
//! the scientific codes. Paper-reported overhead: **+6.5 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// SCF iterations at bench scale.
const ITERATIONS: u64 = 25_000;
/// Compute units per iteration (Fock matrix contraction, scaled down).
const COMPUTE_PER_ITER: u64 = 10_700;
/// Integral record size (medium: bigger than a word, smaller than a
/// page).
const RECORD: usize = 2048;
/// Checkpoint every this many iterations.
const CHECKPOINT_EVERY: u64 = 64;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "hf",
        description: "Hartree-Fock electronic structure simulation",
        paper_overhead_pct: 6.5,
        prepare,
        run,
    }
}

fn prepare(ctx: &mut GuestCtx<'_>, _scale: Scale) {
    let mut basis = vec![0u8; 16 * 1024];
    fill_data(0x4F, &mut basis);
    ctx.write_file("hf.basis", &basis).expect("stage basis set");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    let Ok(basis) = ctx.read_file("hf.basis") else {
        return 1;
    };
    let Ok(ints) = ctx.open("hf.integrals", OpenFlags::rdwr_create(), 0o644) else {
        return 1;
    };
    let mut record = vec![0u8; RECORD];
    let mut readback = vec![0u8; RECORD];
    let mut energy = basis.len() as u64;
    for iter in 0..scale.steps(ITERATIONS) {
        energy = compute(COMPUTE_PER_ITER) ^ energy.rotate_left(5) ^ iter;
        // Write this sweep's integral block, then re-read the previous
        // one (out-of-core SCF pattern).
        fill_data(energy, &mut record);
        let slot = (iter % 8) * RECORD as u64;
        if ctx.pwrite(ints, &record, slot).is_err() {
            return 1;
        }
        let prev = ((iter + 7) % 8) * RECORD as u64;
        if ctx.pread(ints, &mut readback, prev).is_err() {
            return 1;
        }
        if iter % CHECKPOINT_EVERY == 0 {
            let ckpt = format!("iter={iter} energy={energy:016x}\n");
            if ctx.write_file("hf.checkpoint", ckpt.as_bytes()).is_err() {
                return 1;
            }
        }
    }
    if ctx.close(ints).is_err() {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn converges_with_checkpoints() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "hf").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let ckpt = ctx.read_file("/tmp/hf.checkpoint").unwrap();
        assert!(String::from_utf8(ckpt).unwrap().starts_with("iter="));
        // The mix is pread/pwrite-heavy.
        let k = kernel.lock();
        assert!(k.stats.count("pwrite") >= Scale::test().steps(ITERATIONS));
        assert!(k.stats.count("pread") >= Scale::test().steps(ITERATIONS));
    }
}
