//! IBIS: integrated biosphere / climate simulation.
//!
//! Shape: read forcing data once, then long time-stepping loops that are
//! almost pure compute, with a small annual summary appended rarely. The
//! most compute-dominated of the suite. Paper-reported overhead:
//! **+0.7 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// Simulated years at bench scale.
const YEARS: u64 = 2500;
/// Compute units per simulated year (land-surface physics).
const COMPUTE_PER_YEAR: u64 = 96_000;
/// Annual summary record.
const SUMMARY: usize = 128;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "ibis",
        description: "integrated biosphere / climate simulation",
        paper_overhead_pct: 0.7,
        prepare,
        run,
    }
}

fn prepare(ctx: &mut GuestCtx<'_>, _scale: Scale) {
    let mut forcing = vec![0u8; 128 * 1024];
    fill_data(0x1B15, &mut forcing);
    ctx.write_file("ibis.forcing", &forcing).expect("stage forcing");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    let Ok(forcing) = ctx.read_file("ibis.forcing") else {
        return 1;
    };
    let Ok(out) = ctx.open("ibis.annual", OpenFlags::append_create(), 0o644) else {
        return 1;
    };
    let mut carbon = forcing.len() as u64;
    let mut summary = [0u8; SUMMARY];
    for year in 0..scale.steps(YEARS) {
        carbon = compute(COMPUTE_PER_YEAR) ^ carbon.rotate_left(3) ^ year;
        fill_data(carbon, &mut summary);
        if ctx.write(out, &summary).is_err() {
            return 1;
        }
    }
    if ctx.close(out).is_err() {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn writes_one_summary_per_year() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "ibis").unwrap();
        let mut sup = Supervisor::direct(kernel);
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let st = ctx.stat("/tmp/ibis.annual").unwrap();
        assert_eq!(st.size, Scale::test().steps(YEARS) * SUMMARY as u64);
    }
}
