//! `make`: a software build (the paper builds Parrot itself).
//!
//! Shape: the metadata storm that makes interposition expensive —
//! recursive directory scans, a `stat` of every source and target for
//! dependency checking, small reads of sources and headers, and a
//! `fork`/`exec`/`wait` per compilation unit whose child reads the
//! source and writes an object file. Compute (the "compiler") is small
//! per file. Paper-reported overhead: **+35 %**.

use super::{AppSpec, Scale};
use crate::compute::{compute, fill_data};
use idbox_interpose::GuestCtx;

/// Source files at bench scale.
const SOURCES: u64 = 400;
/// Subdirectories the tree is spread over.
const DIRS: u64 = 12;
/// Headers every source includes (each stat'd + read per compile).
const HEADERS: u64 = 8;
/// Compute units per compiled file (parsing + codegen, scaled down).
const COMPUTE_PER_FILE: u64 = 40_000;
/// Size of a source file.
const SRC_SIZE: usize = 1200;

pub(super) fn spec() -> AppSpec {
    AppSpec {
        name: "make",
        description: "software build (metadata-intensive)",
        paper_overhead_pct: 35.0,
        prepare,
        run,
    }
}

fn dir_of(i: u64) -> String {
    format!("src{}", i % DIRS)
}

fn prepare(ctx: &mut GuestCtx<'_>, scale: Scale) {
    for d in 0..DIRS {
        let _ = ctx.mkdir(&format!("src{d}"), 0o755);
    }
    let _ = ctx.mkdir("include", 0o755);
    let mut body = vec![0u8; SRC_SIZE];
    for h in 0..HEADERS {
        fill_data(h + 1000, &mut body);
        ctx.write_file(&format!("include/h{h}.h"), &body)
            .expect("stage header");
    }
    for i in 0..scale.steps(SOURCES) {
        fill_data(i, &mut body);
        ctx.write_file(&format!("{}/f{i}.c", dir_of(i)), &body)
            .expect("stage source");
    }
    ctx.write_file("Makefile", b"all: everything\n").expect("stage makefile");
}

fn run(ctx: &mut GuestCtx<'_>, scale: Scale) -> i32 {
    if ctx.read_file("Makefile").is_err() {
        return 1;
    }
    // Pass 1: scan the tree, stat everything to build the dependency
    // graph (make's hallmark).
    for d in 0..DIRS {
        let Ok(entries) = ctx.readdir(&format!("src{d}")) else {
            return 1;
        };
        for e in entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            if ctx.stat(&format!("src{d}/{}", e.name)).is_err() {
                return 1;
            }
        }
    }
    // Pass 2: per source file — stat source, stat (missing) object, stat
    // each header, then compile in a child process.
    let n = scale.steps(SOURCES);
    for i in 0..n {
        let src = format!("{}/f{i}.c", dir_of(i));
        let obj = format!("{}/f{i}.o", dir_of(i));
        if ctx.stat(&src).is_err() {
            return 1;
        }
        let out_of_date = ctx.stat(&obj).is_err(); // ENOENT: must build
        for h in 0..HEADERS {
            if ctx.stat(&format!("include/h{h}.h")).is_err() {
                return 1;
            }
        }
        if !out_of_date {
            continue;
        }
        // The "compiler" child: read source + headers, compute, write
        // the object file.
        let src_c = src.clone();
        let obj_c = obj.clone();
        let child = ctx.run_child(move |cc| {
            if cc.exec("/bin/cc").is_err() {
                return 1;
            }
            let Ok(source) = cc.read_file(&src_c) else {
                return 1;
            };
            let mut includes = 0u64;
            for h in 0..HEADERS {
                // The compiler stats each include before reading it.
                let header = format!("include/h{h}.h");
                if cc.stat(&header).is_err() || cc.read_file(&header).is_err() {
                    return 1;
                }
                includes += 1;
            }
            let code = compute(COMPUTE_PER_FILE) ^ source.len() as u64 ^ includes;
            let mut object = vec![0u8; SRC_SIZE / 2];
            fill_data(code, &mut object);
            if cc.write_file(&obj_c, &object).is_err() {
                return 1;
            }
            0
        });
        if child.is_err() {
            return 1;
        }
        match ctx.wait() {
            Ok((_, 0)) => {}
            _ => return 1,
        }
    }
    // Pass 3: "link" — stat + read every object, write the binary.
    let mut image = Vec::new();
    for i in 0..n {
        let obj = format!("{}/f{i}.o", dir_of(i));
        if ctx.stat(&obj).is_err() {
            return 1;
        }
        let Ok(o) = ctx.read_file(&obj) else {
            return 1;
        };
        image.extend_from_slice(&o[..16.min(o.len())]);
    }
    if ctx.write_file("parrot.bin", &image).is_err() {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    #[test]
    fn builds_everything_and_is_stat_heavy() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "make").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        assert!(ctx.stat("/tmp/parrot.bin").is_ok());
        // Objects exist for every source.
        let n = Scale::test().steps(SOURCES);
        for i in 0..n {
            assert!(ctx.stat(&format!("/tmp/{}/f{i}.o", dir_of(i))).is_ok());
        }
        // The defining property: stats dominate the profile.
        let k = kernel.lock();
        let stats = k.stats.count("stat");
        let writes = k.stats.count("write");
        assert!(
            stats > writes,
            "make must be metadata-bound: {stats} stats vs {writes} writes"
        );
        assert!(k.stats.count("fork") >= n);
    }

    #[test]
    fn second_build_is_incremental() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "make").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx, Scale::test());
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let forks_after_first = kernel.lock().stats.count("fork");
        assert_eq!(run(&mut ctx, Scale::test()), 0);
        let forks_after_second = kernel.lock().stats.count("fork");
        assert_eq!(
            forks_after_first, forks_after_second,
            "up-to-date objects must not be recompiled"
        );
    }
}
