//! The application suite.

mod amanda;
mod blast;
mod cms;
mod hf;
mod ibis;
mod makeapp;

use idbox_interpose::GuestCtx;

/// Workload scale factor: `Scale(1.0)` is bench scale (hundreds of
/// milliseconds per run); unit tests use small fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Bench scale.
    pub fn bench() -> Self {
        Scale(1.0)
    }

    /// Fast scale for unit tests.
    pub fn test() -> Self {
        Scale(0.01)
    }

    /// Scale a step count (never below 1).
    pub fn steps(&self, base: u64) -> u64 {
        ((base as f64 * self.0) as u64).max(1)
    }
}

/// One synthetic application.
pub struct AppSpec {
    /// Short name as used in Figure 5(b).
    pub name: &'static str,
    /// What the real application was.
    pub description: &'static str,
    /// The slowdown the paper reports for it (percent).
    pub paper_overhead_pct: f64,
    /// Stage input files (run unmeasured, in whichever mode).
    pub prepare: fn(&mut GuestCtx<'_>, Scale),
    /// The measured phase. Works entirely in the process's cwd.
    pub run: fn(&mut GuestCtx<'_>, Scale) -> i32,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppSpec({})", self.name)
    }
}

/// The whole suite, in Figure 5(b) order.
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        amanda::spec(),
        blast::spec(),
        cms::spec(),
        hf::spec(),
        ibis::spec(),
        makeapp::spec(),
    ]
}

/// Find one app by name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    /// Every app must run to successful completion in both modes, with
    /// the same observable results.
    #[test]
    fn apps_complete_in_both_modes() {
        for app in all_apps() {
            for interposed in [false, true] {
                let kernel = share(Kernel::new());
                let pid = {
                    let mut k = kernel.lock();
                    let root = k.vfs().root();
                    k.vfs_mut()
                        .mkdir_all(root, "/work", 0o777, &Cred::ROOT)
                        .unwrap();
                    k.spawn(Cred::new(1000, 1000), "/work", app.name).unwrap()
                };
                let mut sup = if interposed {
                    Supervisor::interposed(
                        kernel,
                        Box::new(idbox_interpose::AllowAll),
                        idbox_types::CostModel::calibrated(),
                    )
                } else {
                    Supervisor::direct(kernel)
                };
                let mut ctx = idbox_interpose::GuestCtx::new(&mut sup, pid);
                (app.prepare)(&mut ctx, Scale::test());
                let code = (app.run)(&mut ctx, Scale::test());
                assert_eq!(
                    code, 0,
                    "{} failed (interposed={})",
                    app.name, interposed
                );
            }
        }
    }

    #[test]
    fn suite_matches_figure5b() {
        let names: Vec<_> = all_apps().iter().map(|a| a.name).collect();
        assert_eq!(names, ["amanda", "blast", "cms", "hf", "ibis", "make"]);
        // The paper's reported overheads ride along for the harness.
        let make = app_by_name("make").unwrap();
        assert_eq!(make.paper_overhead_pct, 35.0);
        let ibis = app_by_name("ibis").unwrap();
        assert_eq!(ibis.paper_overhead_pct, 0.7);
    }

    #[test]
    fn scale_steps_never_zero() {
        assert_eq!(Scale(1e-9).steps(100), 1);
        assert_eq!(Scale(2.0).steps(100), 200);
    }
}
