//! Deterministic, unoptimizable compute kernels.
//!
//! The synthetic applications alternate between system calls and
//! compute; this module supplies the compute as xorshift churn that the
//! optimizer cannot delete, so measured runtimes reflect real work with
//! a stable per-unit cost.

use std::hint::black_box;

/// Burn `units` of ALU work (one unit = one xorshift64 round, roughly a
/// nanosecond on contemporary hardware in release builds). Returns the
/// final state so callers can fold it into output data.
#[inline]
pub fn compute(units: u64) -> u64 {
    let mut x = 0x2545_F491_4F6C_DD1Du64 ^ units.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..units {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    black_box(x)
}

/// Fill `buf` with deterministic pseudo-data derived from `seed` (used
/// to synthesize input files and event records).
pub fn fill_data(seed: u64, buf: &mut [u8]) {
    let mut x = seed | 1;
    for chunk in buf.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bytes = x.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_is_deterministic() {
        assert_eq!(compute(1000), compute(1000));
        assert_ne!(compute(1000), compute(1001));
    }

    #[test]
    fn compute_zero_units_is_cheap_and_valid() {
        let _ = compute(0);
    }

    #[test]
    fn fill_data_deterministic_and_covers_buffer() {
        let mut a = vec![0u8; 100];
        let mut b = vec![0u8; 100];
        fill_data(7, &mut a);
        fill_data(7, &mut b);
        assert_eq!(a, b);
        fill_data(8, &mut b);
        assert_ne!(a, b);
        // Odd-length tail is filled too.
        let mut c = vec![0u8; 13];
        fill_data(1, &mut c);
        assert!(c.iter().any(|&x| x != 0));
    }
}
