//! Timing harness: run an application direct vs. boxed and report the
//! overhead, reproducing the methodology of Figure 5(b).

use crate::apps::{AppSpec, Scale};
use idbox_core::IdentityBox;
use idbox_interpose::{share, GuestCtx, Supervisor};
use idbox_kernel::Kernel;
use idbox_types::{CostModel, SysResult, TrapCostReport};
use idbox_vfs::Cred;
use std::time::{Duration, Instant};

/// The identity the boxed runs carry (any name works; we use the
/// paper's).
pub const RUNNER_IDENTITY: &str = "globus:/O=UnivNowhere/CN=Fred";

/// One application's direct-vs-boxed measurement.
#[derive(Debug, Clone)]
pub struct AppMeasurement {
    /// Application name.
    pub name: &'static str,
    /// The overhead the paper reports (percent).
    pub paper_pct: f64,
    /// Wall-clock of the direct (unmodified) run.
    pub direct: Duration,
    /// Wall-clock of the identity-boxed run.
    pub boxed: Duration,
    /// Trap-cost counters of the boxed run.
    pub report: TrapCostReport,
}

impl AppMeasurement {
    /// Measured overhead in percent.
    pub fn overhead_pct(&self) -> f64 {
        (self.boxed.as_secs_f64() / self.direct.as_secs_f64() - 1.0) * 100.0
    }
}

/// Time one run of `app` on a fresh kernel. `model`: `None` = direct,
/// `Some` = inside an identity box with that cost model.
fn time_one(
    app: &AppSpec,
    scale: Scale,
    model: Option<CostModel>,
) -> SysResult<(Duration, TrapCostReport)> {
    let mut k = Kernel::new();
    k.accounts_mut()
        .add(idbox_kernel::Account::new("dthain", 1000, 1000))
        .unwrap();
    let kernel = share(k);
    let sup_cred = Cred::new(1000, 1000);
    match model {
        None => {
            // The unmodified baseline: plain process, direct syscalls.
            let pid = {
                let mut k = kernel.lock();
                let root = k.vfs().root();
                k.vfs_mut().mkdir_all(root, "/work", 0o777, &Cred::ROOT)?;
                k.spawn(sup_cred, "/work", app.name)?
            };
            let mut sup = Supervisor::direct(kernel);
            let mut ctx = GuestCtx::new(&mut sup, pid);
            (app.prepare)(&mut ctx, scale);
            let start = Instant::now();
            let code = (app.run)(&mut ctx, scale);
            let elapsed = start.elapsed();
            assert_eq!(code, 0, "{} failed in direct mode", app.name);
            Ok((elapsed, TrapCostReport::default()))
        }
        Some(model) => {
            let options = idbox_core::BoxOptions {
                cost_model: model,
                ..Default::default()
            };
            let b = IdentityBox::with_options(kernel, RUNNER_IDENTITY, sup_cred, options)?;
            let pid = b.spawn_process(app.name)?;
            let mut sup = b.supervisor();
            let mut ctx = GuestCtx::new(&mut sup, pid);
            (app.prepare)(&mut ctx, scale);
            let start = Instant::now();
            let code = (app.run)(&mut ctx, scale);
            let elapsed = start.elapsed();
            assert_eq!(code, 0, "{} failed in boxed mode", app.name);
            ctx.exit(code);
            Ok((elapsed, sup.cost_report()))
        }
    }
}

/// Measure one application direct vs. boxed, best of `trials`.
pub fn measure_app(
    app: &AppSpec,
    scale: Scale,
    model: CostModel,
    trials: u32,
) -> SysResult<AppMeasurement> {
    let mut direct = Duration::MAX;
    let mut boxed = Duration::MAX;
    let mut report = TrapCostReport::default();
    for _ in 0..trials.max(1) {
        let (d, _) = time_one(app, scale, None)?;
        direct = direct.min(d);
        let (b, r) = time_one(app, scale, Some(model))?;
        if b < boxed {
            boxed = b;
            report = r;
        }
    }
    Ok(AppMeasurement {
        name: app.name,
        paper_pct: app.paper_overhead_pct,
        direct,
        boxed,
        report,
    })
}

/// Measure the whole suite (Figure 5(b)).
pub fn time_direct_and_boxed(
    scale: Scale,
    model: CostModel,
    trials: u32,
) -> SysResult<Vec<AppMeasurement>> {
    crate::apps::all_apps()
        .iter()
        .map(|app| measure_app(app, scale, model, trials))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structural check at tiny scale: the harness completes and the
    /// boxed run interposes every syscall.
    #[test]
    fn harness_measures_all_apps() {
        let results =
            time_direct_and_boxed(Scale(0.005), CostModel::calibrated(), 1).unwrap();
        assert_eq!(results.len(), 6);
        for m in &results {
            assert!(m.direct > Duration::ZERO);
            assert!(m.boxed > Duration::ZERO);
            assert!(m.report.traps > 0, "{} never trapped", m.name);
        }
    }

    /// The full shape comparison runs at bench scale in release mode
    /// only (see crates/bench). Here we check the one ordering that
    /// survives debug-build noise: make is the most trap-intensive per
    /// unit of direct runtime.
    #[test]
    fn make_is_most_metadata_intensive() {
        let results =
            time_direct_and_boxed(Scale(0.01), CostModel::free_switches(), 1).unwrap();
        let density = |m: &AppMeasurement| m.report.traps as f64 / m.direct.as_secs_f64();
        let make = results.iter().find(|m| m.name == "make").unwrap();
        for other in results.iter().filter(|m| m.name != "make") {
            assert!(
                density(make) > density(other),
                "make trap density {} <= {} of {}",
                density(make),
                density(other),
                other.name
            );
        }
    }
}
