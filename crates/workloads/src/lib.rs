//! Guest programs: the paper's application suite, synthesized.
//!
//! Section 7 measures identity boxing on five scientific applications —
//! AMANDA (gamma-ray telescope simulation), BLAST (genomic search), CMS
//! (high-energy physics apparatus simulation), HF (nucleic/electronic
//! interaction simulation), IBIS (climate simulation) — plus `make`, a
//! build of Parrot itself.
//!
//! **Substitution note (see DESIGN.md):** the original binaries and
//! their inputs are not available, so each application is a *trace-
//! driven synthetic*: a guest program issuing the same I/O **shape** the
//! paper (and its workload-characterization companion, reference 39) describes —
//! large-block sequential I/O for the scientific codes, with per-app
//! compute/IO ratios; and for `make`, a metadata storm of `stat`, small
//! reads, `fork`/`exec` pairs. Overheads are *measured* by running the
//! same guest in direct and interposed modes over the same simulated
//! kernel; nothing about Figure 5(b)'s percentages is hard-coded.

pub mod apps;
pub mod compute;
pub mod harness;
pub mod micro;
pub mod script;

pub use apps::{all_apps, AppSpec, Scale};
pub use compute::compute;
pub use harness::{measure_app, time_direct_and_boxed, AppMeasurement};
pub use script::{is_script, run_script, ScriptError, ScriptResult};
