//! The Figure 5(a) system-call microbenchmarks.
//!
//! The paper times 1000 cycles of 100,000 iterations of getpid, stat,
//! open/close, and 1-byte / 8-kilobyte reads and writes against a file
//! wholly in the buffer cache. These guests reproduce each case; the
//! harness runs them under a direct and an interposed supervisor and
//! reports microseconds per call.

use crate::compute::fill_data;
use idbox_interpose::GuestCtx;
use idbox_kernel::OpenFlags;

/// The benchmark file (pre-staged, resident in the simulated VFS — the
/// analogue of "wholly in the system buffer cache").
pub const BENCH_FILE: &str = "bench.dat";

/// One microbenchmark case of Figure 5(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroCase {
    /// `getpid()` — the null call.
    Getpid,
    /// `stat` of an existing file.
    Stat,
    /// `open` + `close` of an existing file.
    OpenClose,
    /// 1-byte `pread`.
    Read1,
    /// 8-kilobyte `pread`.
    Read8k,
    /// 1-byte `pwrite`.
    Write1,
    /// 8-kilobyte `pwrite`.
    Write8k,
}

impl MicroCase {
    /// All cases in figure order.
    pub fn all() -> [MicroCase; 7] {
        [
            MicroCase::Getpid,
            MicroCase::Stat,
            MicroCase::OpenClose,
            MicroCase::Read1,
            MicroCase::Read8k,
            MicroCase::Write1,
            MicroCase::Write8k,
        ]
    }

    /// Label as printed in the figure.
    pub fn label(&self) -> &'static str {
        match self {
            MicroCase::Getpid => "getpid",
            MicroCase::Stat => "stat",
            MicroCase::OpenClose => "open-close",
            MicroCase::Read1 => "read 1 byte",
            MicroCase::Read8k => "read 8 kbyte",
            MicroCase::Write1 => "write 1 byte",
            MicroCase::Write8k => "write 8 kbyte",
        }
    }
}

/// Stage the benchmark file (16 KiB of data, enough for 8 KiB reads at
/// offset 0).
pub fn prepare(ctx: &mut GuestCtx<'_>) {
    let mut data = vec![0u8; 16 * 1024];
    fill_data(0xBE7C4, &mut data);
    ctx.write_file(BENCH_FILE, &data).expect("stage bench file");
}

/// Run `iters` iterations of one case. Returns a checksum so results
/// cannot be optimized away. Call [`prepare`] first.
pub fn run_case(ctx: &mut GuestCtx<'_>, case: MicroCase, iters: u64) -> u64 {
    let mut sink = 0u64;
    match case {
        MicroCase::Getpid => {
            for _ in 0..iters {
                sink ^= ctx.getpid() as u64;
            }
        }
        MicroCase::Stat => {
            for _ in 0..iters {
                let st = ctx.stat(BENCH_FILE).expect("stat bench file");
                sink ^= st.size;
            }
        }
        MicroCase::OpenClose => {
            for _ in 0..iters {
                let fd = ctx
                    .open(BENCH_FILE, OpenFlags::rdonly(), 0)
                    .expect("open bench file");
                ctx.close(fd).expect("close bench file");
                sink ^= fd as u64;
            }
        }
        MicroCase::Read1 | MicroCase::Read8k => {
            let len = if case == MicroCase::Read1 { 1 } else { 8192 };
            let fd = ctx
                .open(BENCH_FILE, OpenFlags::rdonly(), 0)
                .expect("open bench file");
            let mut buf = vec![0u8; len];
            for _ in 0..iters {
                let n = ctx.pread(fd, &mut buf, 0).expect("pread");
                sink ^= n as u64 ^ buf[0] as u64;
            }
            ctx.close(fd).expect("close");
        }
        MicroCase::Write1 | MicroCase::Write8k => {
            let len = if case == MicroCase::Write1 { 1 } else { 8192 };
            let fd = ctx
                .open(BENCH_FILE, OpenFlags::rdwr(), 0)
                .expect("open bench file");
            let mut buf = vec![0u8; len];
            fill_data(0x11, &mut buf);
            for i in 0..iters {
                buf[0] = i as u8;
                let n = ctx.pwrite(fd, &buf, 0).expect("pwrite");
                sink ^= n as u64;
            }
            ctx.close(fd).expect("close");
        }
    }
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, AllowAll, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_types::CostModel;
    use idbox_vfs::Cred;

    #[test]
    fn all_cases_run_in_both_modes() {
        for interposed in [false, true] {
            let kernel = share(Kernel::new());
            let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "micro").unwrap();
            let mut sup = if interposed {
                Supervisor::interposed(kernel, Box::new(AllowAll), CostModel::calibrated())
            } else {
                Supervisor::direct(kernel)
            };
            let mut ctx = GuestCtx::new(&mut sup, pid);
            prepare(&mut ctx);
            for case in MicroCase::all() {
                run_case(&mut ctx, case, 10);
            }
        }
    }

    #[test]
    fn read_cases_count_traps_per_iteration() {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "micro").unwrap();
        let mut sup =
            Supervisor::interposed(kernel, Box::new(AllowAll), CostModel::calibrated());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        prepare(&mut ctx);
        ctx.supervisor().reset_cost_report();
        run_case(&mut ctx, MicroCase::Read8k, 50);
        let report = ctx.supervisor().cost_report();
        // open + 50 preads + close = 52 traps.
        assert_eq!(report.traps, 52);
        // 8 KiB payloads travel through the channel.
        assert!(report.channel_bytes >= 50 * 8192);
    }

    #[test]
    fn labels_cover_figure() {
        let labels: Vec<_> = MicroCase::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 7);
        assert!(labels.contains(&"getpid"));
        assert!(labels.contains(&"write 8 kbyte"));
    }
}
