//! GuestScript: a tiny interpreted language for staged programs.
//!
//! The paper's `exec` call runs *staged executables*. Registered host
//! functions cover compiled programs; GuestScript covers the other
//! half — programs whose code really travels over the wire as file
//! content. A script is a text file whose first line is
//! `#!guestscript`; every subsequent line is one command executed
//! against the guest syscall interface, so the identity box's ACL
//! checks apply to each operation exactly as for any other program.
//!
//! ```text
//! #!guestscript
//! # simulate: read input, burn compute, write a result
//! read input.dat
//! checksum
//! compute 20000
//! write out.dat result=$SUM
//! echo finished
//! exit 0
//! ```
//!
//! Commands (one per line, `#` comments):
//!
//! | command | effect |
//! |---|---|
//! | `read <path>` | load file into the data register |
//! | `write <path> <words...>` | write words (with `$VAR` expansion) |
//! | `append <path> <words...>` | append words |
//! | `copy <src> <dst>` | copy a file |
//! | `mkdir <path>` / `rmdir <path>` / `unlink <path>` | namespace ops |
//! | `stat <path>` | set `$SIZE` to the file size |
//! | `checksum` | set `$SUM` to an FNV-1a digest of the data register |
//! | `compute <units>` | burn ALU work |
//! | `set <VAR> <value>` / `add <VAR> <n>` | integer registers |
//! | `repeat <n>` ... `end` | loop a block (nestable) |
//! | `echo <words...>` | append a line to the captured output |
//! | `assert-exists <path>` / `assert-denied <path>` | checks |
//! | `exit <code>` | stop with a code |

use crate::compute::compute;
use idbox_interpose::GuestCtx;
use idbox_types::Errno;
use std::collections::BTreeMap;
use std::fmt;

/// The interpreter's shebang line.
pub const SHEBANG: &str = "#!guestscript";

/// Result of a script run: exit code plus captured `echo` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptResult {
    /// The script's exit code (0 unless `exit` says otherwise or a
    /// command fails).
    pub code: i32,
    /// Lines produced by `echo`.
    pub output: String,
}

/// Script parse/run errors (turned into nonzero exit codes by
/// [`run_script`], but useful for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// Missing `#!guestscript` first line.
    NotAScript,
    /// Unknown command.
    UnknownCommand(String),
    /// Wrong arguments for a command.
    BadArguments(String),
    /// `end` without `repeat` or an unclosed `repeat`.
    UnbalancedRepeat,
    /// A guest operation failed.
    Sys(String, Errno),
    /// An assertion failed.
    AssertionFailed(String),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::NotAScript => write!(f, "missing {SHEBANG} shebang"),
            ScriptError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ScriptError::BadArguments(l) => write!(f, "bad arguments: {l}"),
            ScriptError::UnbalancedRepeat => write!(f, "unbalanced repeat/end"),
            ScriptError::Sys(op, e) => write!(f, "{op}: {e}"),
            ScriptError::AssertionFailed(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// True when `image` looks like a GuestScript program.
pub fn is_script(image: &[u8]) -> bool {
    image.starts_with(SHEBANG.as_bytes())
}

/// Interpreter state.
struct Interp<'a, 'b> {
    ctx: &'a mut GuestCtx<'b>,
    vars: BTreeMap<String, i64>,
    data: Vec<u8>,
    output: String,
    steps: u64,
}

/// Upper bound on executed commands: scripts terminate.
const MAX_STEPS: u64 = 1_000_000;

impl Interp<'_, '_> {
    fn expand(&self, word: &str) -> String {
        if let Some(name) = word.strip_prefix('$') {
            if let Some(v) = self.vars.get(name) {
                return v.to_string();
            }
        }
        // Inline expansion of $VAR occurrences inside the word.
        let mut out = String::new();
        let mut chars = word.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '$' {
                let mut name = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        name.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if let Some(v) = self.vars.get(&name) {
                    out.push_str(&v.to_string());
                } else {
                    out.push('$');
                    out.push_str(&name);
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    fn expand_all(&self, words: &[&str]) -> String {
        words
            .iter()
            .map(|w| self.expand(w))
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn run_block(&mut self, lines: &[&str]) -> Result<Option<i32>, ScriptError> {
        let mut i = 0;
        while i < lines.len() {
            self.steps += 1;
            if self.steps > MAX_STEPS {
                return Err(ScriptError::BadArguments("step limit exceeded".into()));
            }
            let line = lines[i].trim();
            i += 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let words: Vec<&str> = line.split_whitespace().collect();
            let (cmd, args) = words.split_first().expect("non-empty line");
            match *cmd {
                "repeat" => {
                    let [count] = args else {
                        return Err(ScriptError::BadArguments(line.into()));
                    };
                    let count: u64 = self
                        .expand(count)
                        .parse()
                        .map_err(|_| ScriptError::BadArguments(line.into()))?;
                    // Find the matching `end` (nesting-aware).
                    let mut depth = 1;
                    let mut j = i;
                    while j < lines.len() {
                        let w = lines[j].trim();
                        if w.starts_with("repeat") {
                            depth += 1;
                        } else if w == "end" {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    if depth != 0 {
                        return Err(ScriptError::UnbalancedRepeat);
                    }
                    let body = &lines[i..j];
                    for _ in 0..count {
                        if let Some(code) = self.run_block(body)? {
                            return Ok(Some(code));
                        }
                    }
                    i = j + 1;
                }
                "end" => return Err(ScriptError::UnbalancedRepeat),
                "exit" => {
                    let code = args
                        .first()
                        .map(|w| self.expand(w))
                        .unwrap_or_else(|| "0".into())
                        .parse()
                        .map_err(|_| ScriptError::BadArguments(line.into()))?;
                    return Ok(Some(code));
                }
                _ => {
                    if let Some(code) = self.step(cmd, args, line)? {
                        return Ok(Some(code));
                    }
                }
            }
        }
        Ok(None)
    }

    fn step(
        &mut self,
        cmd: &str,
        args: &[&str],
        line: &str,
    ) -> Result<Option<i32>, ScriptError> {
        let sys = |op: &str, e: Errno| ScriptError::Sys(op.to_string(), e);
        match cmd {
            "read" => {
                let [path] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                self.data = self.ctx.read_file(&path).map_err(|e| sys("read", e))?;
            }
            "write" | "append" => {
                let Some((path, rest)) = args.split_first() else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                let mut content = self.expand_all(rest);
                content.push('\n');
                if cmd == "write" {
                    self.ctx
                        .write_file(&path, content.as_bytes())
                        .map_err(|e| sys("write", e))?;
                } else {
                    use idbox_kernel::OpenFlags;
                    let fd = self
                        .ctx
                        .open(&path, OpenFlags::append_create(), 0o644)
                        .map_err(|e| sys("append", e))?;
                    let r = self.ctx.write(fd, content.as_bytes());
                    let _ = self.ctx.close(fd);
                    r.map_err(|e| sys("append", e))?;
                }
            }
            "copy" => {
                let [src, dst] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let (src, dst) = (self.expand(src), self.expand(dst));
                let data = self.ctx.read_file(&src).map_err(|e| sys("copy", e))?;
                self.ctx.write_file(&dst, &data).map_err(|e| sys("copy", e))?;
            }
            "mkdir" | "rmdir" | "unlink" => {
                let [path] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                let r = match cmd {
                    "mkdir" => self.ctx.mkdir(&path, 0o755),
                    "rmdir" => self.ctx.rmdir(&path),
                    _ => self.ctx.unlink(&path),
                };
                r.map_err(|e| sys(cmd, e))?;
            }
            "stat" => {
                let [path] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                let st = self.ctx.stat(&path).map_err(|e| sys("stat", e))?;
                self.vars.insert("SIZE".into(), st.size as i64);
            }
            "checksum" => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &b in &self.data {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                self.vars.insert("SUM".into(), (h & 0x7fff_ffff_ffff_ffff) as i64);
            }
            "compute" => {
                let [units] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let units: u64 = self
                    .expand(units)
                    .parse()
                    .map_err(|_| ScriptError::BadArguments(line.into()))?;
                compute(units.min(100_000_000));
            }
            "set" => {
                let [var, value] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let value: i64 = self
                    .expand(value)
                    .parse()
                    .map_err(|_| ScriptError::BadArguments(line.into()))?;
                self.vars.insert(var.to_string(), value);
            }
            "add" => {
                let [var, delta] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let delta: i64 = self
                    .expand(delta)
                    .parse()
                    .map_err(|_| ScriptError::BadArguments(line.into()))?;
                *self.vars.entry(var.to_string()).or_insert(0) += delta;
            }
            "echo" => {
                let text = self.expand_all(args);
                self.output.push_str(&text);
                self.output.push('\n');
            }
            "assert-exists" => {
                let [path] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                if self.ctx.stat(&path).is_err() {
                    return Err(ScriptError::AssertionFailed(format!(
                        "{path} does not exist"
                    )));
                }
            }
            "assert-denied" => {
                let [path] = args else {
                    return Err(ScriptError::BadArguments(line.into()));
                };
                let path = self.expand(path);
                match self.ctx.read_file(&path) {
                    Err(Errno::EACCES) => {}
                    other => {
                        return Err(ScriptError::AssertionFailed(format!(
                            "{path}: expected EACCES, got {other:?}"
                        )))
                    }
                }
            }
            other => return Err(ScriptError::UnknownCommand(other.to_string())),
        }
        Ok(None)
    }
}

/// Parse and run a script image against the guest interface. Returns the
/// exit code and the `echo` output; script errors become exit code 1
/// with the error message appended to the output.
pub fn run_script(ctx: &mut GuestCtx<'_>, image: &[u8]) -> ScriptResult {
    let Ok(text) = std::str::from_utf8(image) else {
        return ScriptResult {
            code: 1,
            output: "script: not utf-8\n".to_string(),
        };
    };
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(SHEBANG) {
        return ScriptResult {
            code: 1,
            output: format!("script: {}\n", ScriptError::NotAScript),
        };
    }
    let body: Vec<&str> = lines.collect();
    let mut interp = Interp {
        ctx,
        vars: BTreeMap::new(),
        data: Vec::new(),
        output: String::new(),
        steps: 0,
    };
    match interp.run_block(&body) {
        Ok(code) => ScriptResult {
            code: code.unwrap_or(0),
            output: interp.output,
        },
        Err(e) => {
            let mut output = interp.output;
            output.push_str(&format!("script error: {e}\n"));
            ScriptResult { code: 1, output }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::{share, Supervisor};
    use idbox_kernel::Kernel;
    use idbox_vfs::Cred;

    fn ctx_run(script: &str) -> (ScriptResult, idbox_interpose::SharedKernel) {
        let kernel = share(Kernel::new());
        let pid = kernel.lock().spawn(Cred::ROOT, "/tmp", "script").unwrap();
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        let r = run_script(&mut ctx, script.as_bytes());
        (r, kernel)
    }

    #[test]
    fn hello_world() {
        let (r, _) = ctx_run("#!guestscript\necho hello world\nexit 0\n");
        assert_eq!(r.code, 0);
        assert_eq!(r.output, "hello world\n");
    }

    #[test]
    fn shebang_required() {
        let (r, _) = ctx_run("echo nope\n");
        assert_eq!(r.code, 1);
        assert!(r.output.contains("shebang"));
    }

    #[test]
    fn file_roundtrip_and_stat() {
        let (r, _) = ctx_run(
            "#!guestscript\n\
             write data.txt some payload\n\
             read data.txt\n\
             checksum\n\
             stat data.txt\n\
             echo size=$SIZE sum=$SUM\n",
        );
        assert_eq!(r.code, 0);
        assert!(r.output.starts_with("size=13 sum="), "{}", r.output);
    }

    #[test]
    fn variables_and_loops() {
        let (r, _) = ctx_run(
            "#!guestscript\n\
             set N 0\n\
             repeat 5\n\
             add N 2\n\
             end\n\
             echo n=$N\n",
        );
        assert_eq!(r.code, 0);
        assert_eq!(r.output, "n=10\n");
    }

    #[test]
    fn nested_loops() {
        let (r, _) = ctx_run(
            "#!guestscript\n\
             set N 0\n\
             repeat 3\n\
             repeat 4\n\
             add N 1\n\
             end\n\
             end\n\
             echo $N\n",
        );
        assert_eq!(r.output, "12\n");
    }

    #[test]
    fn exit_inside_loop_stops_everything() {
        let (r, _) = ctx_run(
            "#!guestscript\n\
             repeat 100\n\
             exit 7\n\
             end\n\
             echo unreachable\n",
        );
        assert_eq!(r.code, 7);
        assert!(!r.output.contains("unreachable"));
    }

    #[test]
    fn namespace_commands() {
        let (r, kernel) = ctx_run(
            "#!guestscript\n\
             mkdir work\n\
             write work/a.txt first\n\
             copy work/a.txt work/b.txt\n\
             unlink work/a.txt\n\
             assert-exists work/b.txt\n\
             append work/b.txt second\n",
        );
        assert_eq!(r.code, 0, "{}", r.output);
        let mut k = kernel.lock();
        let root = k.vfs().root();
        let b = k.vfs_mut().read_file(root, "/tmp/work/b.txt", &Cred::ROOT).unwrap();
        assert_eq!(b, b"first\nsecond\n");
        assert!(k.vfs().stat(root, "/tmp/work/a.txt", true, &Cred::ROOT).is_err());
    }

    #[test]
    fn failures_surface_as_exit_1() {
        let (r, _) = ctx_run("#!guestscript\nread /no/such/file\n");
        assert_eq!(r.code, 1);
        assert!(r.output.contains("ENOENT"), "{}", r.output);
        let (r, _) = ctx_run("#!guestscript\nfrobnicate\n");
        assert_eq!(r.code, 1);
        assert!(r.output.contains("unknown command"));
        let (r, _) = ctx_run("#!guestscript\nrepeat 3\necho x\n");
        assert_eq!(r.code, 1);
        assert!(r.output.contains("unbalanced"));
    }

    #[test]
    fn assert_denied_checks_acls() {
        // Run under an identity box: the supervisor's private file is
        // denied, and the script can observe that.
        let mut k = Kernel::new();
        k.accounts_mut()
            .add(idbox_kernel::Account::new("op", 1000, 1000))
            .unwrap();
        {
            let root = k.vfs().root();
            k.vfs_mut().mkdir(root, "/home/op", 0o700, &Cred::ROOT).unwrap();
            k.vfs_mut().chown(root, "/home/op", 1000, 1000, &Cred::ROOT).unwrap();
            k.vfs_mut()
                .write_file(root, "/home/op/secret", b"x", &Cred::new(1000, 1000))
                .unwrap();
        }
        let kernel = share(k);
        let b = idbox_core::IdentityBox::create(kernel, "Visitor", Cred::new(1000, 1000))
            .unwrap();
        let (code, _) = b
            .run("script", |ctx| {
                let r = run_script(
                    ctx,
                    b"#!guestscript\nassert-denied /home/op/secret\necho contained\n",
                );
                assert_eq!(r.output, "contained\n");
                r.code
            })
            .unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn step_limit_stops_runaway_scripts() {
        let (r, _) = ctx_run(
            "#!guestscript\n\
             repeat 2000000\n\
             set X 1\n\
             end\n",
        );
        assert_eq!(r.code, 1);
        assert!(r.output.contains("step limit"));
    }

    #[test]
    fn is_script_detection() {
        assert!(is_script(b"#!guestscript\necho hi\n"));
        assert!(!is_script(b"#!guest sim\n"));
        assert!(!is_script(b"ELF..."));
    }
}
