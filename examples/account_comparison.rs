//! Figure 1 in action: the same three grid users admitted under every
//! identity-mapping method, with the property matrix measured live.
//!
//! ```text
//! cargo run --example account_comparison
//! ```

use idbox::mapping::probe::probe_all;
use idbox::mapping::MethodProperties;

fn main() {
    println!("Admitting Fred, George (both /O=UnivNowhere) and Eve (/O=Elsewhere)");
    println!("under each identity-mapping method, then probing the Figure 1 matrix:\n");
    println!("{}", MethodProperties::table_header());
    println!("{}", "-".repeat(86));
    for row in probe_all() {
        println!("{}", row.table_row());
    }
    println!("{}", "-".repeat(86));
    println!("privacy/sharing 'fixed' = only along pre-configured group lines");
    println!("'ops' = root interventions needed to admit the three users");
    println!("\nOnly the identity box row is all-yes with zero privilege and zero ops.");
}
