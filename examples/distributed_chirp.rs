//! Figure 3 — identity boxing in a distributed system, over real TCP.
//!
//! Fred, holding GSI credentials, discovers a Chirp server, reserves
//! /work with the V right, stages in sim.exe and its input, runs it
//! remotely inside an identity box named by his credentials, and
//! retrieves the output — no account on the server, no administrator,
//! no root.
//!
//! ```text
//! cargo run --example distributed_chirp
//! ```

use idbox::acl::{Acl, Rights};
use idbox::auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox::chirp::{catalog, ChirpClient, ChirpServer, ServerConfig};
use idbox::types::AuthMethod;

fn main() {
    // --- Grid infrastructure: a CA everyone trusts.
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xCA11AB1E);

    // --- The server operator (an ordinary user) deploys a Chirp server
    // whose root ACL is exactly the paper's:
    //     hostname:*.nowhere.edu   rlx
    //     globus:/O=UnivNowhere/*  v(rwlax)
    let mut root_acl = Acl::empty();
    root_acl.set(
        "hostname:*.nowhere.edu",
        Rights::READ | Rights::LIST | Rights::EXECUTE,
    );
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);

    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus, AuthMethod::Hostname];
    verifier.cas.trust(ca.clone());

    let mut server = ChirpServer::new(ServerConfig {
        name: "storage.nowhere.edu".to_string(),
        verifier,
        root_acl,
        ..Default::default()
    })
    .expect("server setup");
    // The physics simulation the site offers (staged executables name it).
    server.register_program("sim", |ctx, args| {
        let particles: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1000);
        let input = ctx.read_file("input.dat").unwrap_or_default();
        let mut energy = 0u64;
        for (i, b) in input.iter().enumerate() {
            energy = energy.wrapping_mul(31).wrapping_add(*b as u64 + i as u64);
        }
        let out = format!("particles={particles} energy={energy:#x}\n");
        match ctx.write_file("out.dat", out.as_bytes()) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    });
    let handle = server.spawn().unwrap();
    println!("chirp server listening on {}", handle.addr());

    // --- The catalog publishes it.
    let cat = catalog::Catalog::spawn().unwrap();
    catalog::register(cat.addr(), &handle.addr().to_string(), "storage.nowhere.edu")
        .unwrap();
    let discovered = catalog::list(cat.addr()).unwrap();
    println!("catalog lists {} server(s): {}", discovered.len(), discovered[0].name);

    // --- Fred connects with his GSI credential.
    let creds = vec![ClientCredential::Globus(ca.issue("/O=UnivNowhere/CN=Fred"))];
    let addr: std::net::SocketAddr = discovered[0].addr.parse().unwrap();
    let mut client = ChirpClient::connect(addr, &creds).unwrap();
    println!("authenticated as: {}", client.whoami().unwrap());

    // 1. mkdir /work — granted through the reserve right; the fresh ACL
    //    names Fred with rwlax.
    client.mkdir("/work", 0o755).unwrap();
    let acl = client.getacl("/work").unwrap();
    println!("1. mkdir /work        -> ACL: {}", acl.to_text().trim_end());

    // 2-3. stage in the executable and input.
    client
        .put_mode("/work/sim.exe", b"#!guest sim\n(simulated executable image)\n", 0o755)
        .unwrap();
    client.put("/work/input.dat", b"collision data 2005").unwrap();
    println!("2. put sim.exe        -> staged");
    println!("3. put input.dat      -> staged");

    // 4. exec — runs on the server inside an identity box named
    //    globus:/O=UnivNowhere/CN=Fred.
    let code = client.exec("/work/sim.exe", &["50000"]).unwrap();
    println!("4. exec sim.exe 50000 -> exit code {code}");
    assert_eq!(code, 0);

    // 5. retrieve the output and clean up.
    let out = client.get("/work/out.dat").unwrap();
    println!("5. get out.dat        -> {}", String::from_utf8_lossy(&out).trim_end());
    client.unlink("/work/out.dat").unwrap();
    client.unlink("/work/input.dat").unwrap();
    client.unlink("/work/sim.exe").unwrap();
    client.rmdir("/work").unwrap();
    println!("   cleanup            -> done");

    client.quit().unwrap();
    handle.shutdown();
    println!("\nNo account was created before or during any of this.");
}
