//! Figure 6 — a tour of the hierarchical identity namespace the paper
//! proposes for future operating systems.
//!
//! ```text
//! cargo run --example hierarchy_tour
//! ```

use idbox::hier::{DomainTree, HierId};
use idbox::kernel::Pid;
use idbox::types::Errno;

fn show(t: &DomainTree, d: &HierId, depth: usize) {
    println!("{}{}", "   ".repeat(depth), d.leaf());
    for c in t.children(d) {
        show(t, &c, depth + 1);
    }
}

fn main() {
    let mut t = DomainTree::new();
    let root = HierId::root();

    // Ordinary users create protection domains as needed — no account
    // database, no superuser.
    let dthain = t.create(&root, &root, "dthain").unwrap();
    let httpd = t.create(&root, &root, "httpd").unwrap();
    let grid = t.create(&root, &root, "grid").unwrap();
    t.create(&dthain, &dthain, "visitor").unwrap();
    t.create(&httpd, &httpd, "webapp").unwrap();
    t.create(&grid, &grid, "anon2").unwrap();
    let anon5 = t.create(&grid, &grid, "anon5").unwrap();

    println!("The Figure 6 identity tree:");
    show(&t, &root, 0);

    // Grid identities hang off the anonymous domains exactly as in the
    // figure's caption.
    let freddy = t
        .create(&grid, &anon5, "O=UnivNowhere_CN=Freddy")
        .unwrap();
    println!("\ngrid server attached a visitor: {freddy}");

    // Management is subtree-scoped.
    let visitor = HierId::parse("root:dthain:visitor").unwrap();
    t.assign(Pid(100), visitor.clone()).unwrap();
    t.assign(Pid(101), dthain.clone()).unwrap();
    println!("\ndthain manages {:?}", t.processes_under(&dthain));
    println!("visitor manages {:?}", t.processes_under(&visitor));

    // The visitor cannot dissolve its own sandbox; dthain can.
    assert_eq!(t.destroy(&visitor, &visitor), Err(Errno::EPERM));
    let orphans = t.destroy(&dthain, &visitor).unwrap();
    println!("\ndthain destroyed {visitor}; orphaned processes: {orphans:?}");
    assert_eq!(orphans, vec![Pid(100)]);

    // Names convert directly into flat identities for ACLs, so the same
    // wildcard machinery applies: "root:grid:*" matches every grid guest.
    let pattern = idbox::acl::SubjectPattern::new("root:grid:*");
    assert!(pattern.matches(&anon5.to_identity()));
    assert!(pattern.matches(&freddy.to_identity()));
    assert!(!pattern.matches(&dthain.to_identity()));
    println!("\nACL subject 'root:grid:*' matches every grid guest — sharing and");
    println!("delegation work across the tree with the ordinary ACL machinery.");
}
