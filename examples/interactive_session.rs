//! Figure 2 — an interactive identity-box session, replayed.
//!
//! The supervising Unix user `dthain` keeps a private file `secret`;
//! he creates an identity box for the visitor `Freddy`, who is denied
//! the secret but works freely in a fresh home with an ACL naming him.
//!
//! ```text
//! cargo run --example interactive_session
//! ```

use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel, OpenFlags};
use idbox::types::Errno;
use idbox::vfs::Cred;

fn main() {
    // --- dthain's machine.
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
    let dthain = Cred::new(1000, 1000);
    {
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/home/dthain", 0o700, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT).unwrap();
        k.vfs_mut()
            .write_file(root, "/home/dthain/secret", b"my private notes\n", &dthain)
            .unwrap();
        k.sync_passwd_file();
    }
    let kernel = share(k);

    println!("dthain$ cat ~/secret");
    println!("my private notes");
    println!("dthain$ parrot_identity_box Freddy tcsh");

    // --- Freddy's session inside the box.
    let b = IdentityBox::create(kernel, "Freddy", dthain).unwrap();
    b.run("tcsh", |sh| {
        // whoami
        let me = sh.get_user_name().unwrap();
        println!("freddy$ whoami");
        println!("{me}");
        assert_eq!(me.as_str(), "Freddy");

        // The private passwd copy makes account tools sensible.
        let passwd = String::from_utf8(sh.read_file("/etc/passwd").unwrap()).unwrap();
        assert!(passwd.starts_with("Freddy:x:"));

        // cat ~dthain/secret → access denied (no ACL: nobody rules).
        println!("freddy$ cat /home/dthain/secret");
        match sh.open("/home/dthain/secret", OpenFlags::rdonly(), 0) {
            Err(Errno::EACCES) => println!("cat: /home/dthain/secret: Permission denied"),
            other => panic!("expected denial, got {other:?}"),
        }

        // cd; vi mydata → allowed by the home ACL naming Freddy.
        let home = sh.getcwd().unwrap();
        println!("freddy$ vi mydata   (in {home})");
        sh.write_file("mydata", b"Freddy's work\n").unwrap();
        let back = sh.read_file("mydata").unwrap();
        assert_eq!(back, b"Freddy's work\n");
        println!("freddy$ cat mydata");
        print!("{}", String::from_utf8(back).unwrap());

        // The ACL that made it possible:
        let acl = String::from_utf8(sh.read_file(".__acl").unwrap()).unwrap();
        println!("freddy$ cat .__acl");
        print!("{acl}");
        assert!(acl.contains("Freddy"));
        0
    })
    .unwrap();

    println!("freddy$ exit");
    println!("dthain$ # Freddy never appeared in /etc/passwd:");
    let k = b.kernel().lock();
    assert!(k.accounts().lookup("Freddy").is_none());
    println!("dthain$ grep -c Freddy /etc/passwd   -> 0");
}
