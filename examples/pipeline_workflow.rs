//! A grid pipeline workload ("Pipeline and batch sharing in grid
//! workloads" is the companion study the paper's applications come
//! from): three stages run as separate boxed jobs under one identity,
//! each consuming its predecessor's output; the final product is then
//! shared with a collaborator purely by grid name.
//!
//! ```text
//! cargo run --example pipeline_workflow
//! ```

use idbox::acl::Rights;
use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::types::Errno;
use idbox::vfs::Cred;

fn main() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let sup = Cred::new(1000, 1000);

    let fred = IdentityBox::create(kernel.clone(), "globus:/O=UnivNowhere/CN=Fred", sup)
        .unwrap();
    let home = fred.home().to_string();
    println!("pipeline owner: {}", fred.identity());

    // --- Stage 1: generate raw events.
    let h = home.clone();
    let (code, _) = fred
        .run("stage1-generate", move |ctx| {
            let mut raw = String::new();
            let mut x = 42u64;
            for i in 0..200 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                raw.push_str(&format!("event {i} energy {}\n", x % 10_000));
            }
            ctx.write_file(&format!("{h}/raw.dat"), raw.as_bytes()).unwrap();
            0
        })
        .unwrap();
    assert_eq!(code, 0);
    println!("stage 1: generated raw.dat");

    // --- Stage 2: filter (a separate job, possibly hours later — same
    // identity, same home, no accounts involved).
    let h = home.clone();
    fred.run("stage2-filter", move |ctx| {
        let raw = String::from_utf8(ctx.read_file(&format!("{h}/raw.dat")).unwrap()).unwrap();
        let filtered: String = raw
            .lines()
            .filter(|l| {
                l.rsplit(' ')
                    .next()
                    .and_then(|e| e.parse::<u64>().ok())
                    .map(|e| e > 5000)
                    .unwrap_or(false)
            })
            .map(|l| format!("{l}\n"))
            .collect();
        ctx.write_file(&format!("{h}/filtered.dat"), filtered.as_bytes())
            .unwrap();
        0
    })
    .unwrap();
    println!("stage 2: filtered high-energy events");

    // --- Stage 3: summarize.
    let h = home.clone();
    fred.run("stage3-summarize", move |ctx| {
        let filtered =
            String::from_utf8(ctx.read_file(&format!("{h}/filtered.dat")).unwrap()).unwrap();
        let count = filtered.lines().count();
        ctx.write_file(
            &format!("{h}/summary.txt"),
            format!("high-energy events: {count}\n").as_bytes(),
        )
        .unwrap();
        0
    })
    .unwrap();
    println!("stage 3: wrote summary.txt");

    // --- Sharing: George (another grid user, no local account) may read
    // the summary once Fred extends the ACL — by grid name.
    let george =
        IdentityBox::create(kernel, "globus:/O=UnivNowhere/CN=George", sup).unwrap();
    let h = home.clone();
    let denied = george
        .run("george-before", move |ctx| {
            i32::from(matches!(
                ctx.read_file(&format!("{h}/summary.txt")),
                Err(Errno::EACCES)
            ))
        })
        .unwrap()
        .0;
    assert_eq!(denied, 1);
    println!("george before grant: denied");

    let h = home.clone();
    fred.run("grant", move |ctx| {
        let acl_path = format!("{h}/.__acl");
        let mut acl = String::from_utf8(ctx.read_file(&acl_path).unwrap()).unwrap();
        acl.push_str(&format!(
            "globus:/O=UnivNowhere/CN=George {}\n",
            (Rights::READ | Rights::LIST).letters()
        ));
        ctx.write_file(&acl_path, acl.as_bytes()).unwrap();
        0
    })
    .unwrap();

    let h = home.clone();
    let summary = std::sync::Arc::new(parking_lot_free_cell());
    let s2 = summary.clone();
    george
        .run("george-after", move |ctx| {
            let data = ctx.read_file(&format!("{h}/summary.txt")).unwrap();
            s2.lock().unwrap().replace(String::from_utf8_lossy(&data).into_owned());
            0
        })
        .unwrap();
    println!(
        "george after grant: {}",
        summary.lock().unwrap().clone().unwrap().trim()
    );
    println!("\nthree pipeline stages + cross-user sharing, zero accounts, zero root.");
}

fn parking_lot_free_cell() -> std::sync::Mutex<Option<String>> {
    std::sync::Mutex::new(None)
}
