//! Quickstart: create an identity box and run a program in it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::vfs::Cred;

fn main() {
    // A simulated machine: kernel, filesystem, accounts. The supervising
    // user is an ordinary account — no root anywhere.
    let mut kernel = Kernel::new();
    kernel
        .accounts_mut()
        .add(Account::new("dthain", 1000, 1000))
        .unwrap();
    let kernel = share(kernel);
    let supervisor = Cred::new(1000, 1000);

    // An identity box for a visitor known only by a high-level name.
    // No local account is created; the name can be anything.
    let visitor = IdentityBox::create(
        kernel,
        "globus:/O=UnivNowhere/CN=Fred",
        supervisor,
    )
    .unwrap();
    println!("created identity box for {}", visitor.identity());
    println!("fresh home directory:    {}", visitor.home());

    // Run a guest program inside the box. Every system call it makes is
    // trapped and checked against ACLs keyed by the global identity.
    let (code, report) = visitor
        .run("demo", |ctx| {
            // The new get_user_name() syscall reports the global name.
            let me = ctx.get_user_name().unwrap();
            println!("inside the box, I am:    {me}");

            // The visitor's home has an ACL granting them full control.
            ctx.write_file("/home/boxes/globus__O_UnivNowhere_CN_Fred/data.txt",
                           b"hello from inside the box").unwrap();

            // But the rest of the system falls back to `nobody` rules:
            // the supervising user's private files are unreachable.
            match ctx.read_file("/root/.profile") {
                Err(e) => println!("reading /root/.profile:  denied ({e})"),
                Ok(_) => unreachable!("the box must protect the owner"),
            }
            0
        })
        .unwrap();

    println!("guest exited with code {code}");
    println!(
        "interposition cost: {} traps, {} context switches, {} peeks, {} pokes",
        report.traps, report.switches, report.peeks, report.pokes
    );
}
