//! Untrusted web browsing (Section 9): run a downloaded program under a
//! credentialed name, contain it, and keep a forensic record.
//!
//! ```text
//! cargo run --example untrusted_download
//! ```

use idbox::core::{BoxOptions, IdentityBox};
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::vfs::Cred;

fn main() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("alice", 1000, 1000)).unwrap();
    let alice = Cred::new(1000, 1000);
    {
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/home/alice", 0o700, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/home/alice", 1000, 1000, &Cred::ROOT).unwrap();
        k.vfs_mut()
            .write_file(root, "/home/alice/banking.txt", b"account 12345", &alice)
            .unwrap();
    }
    let kernel = share(k);

    // The downloaded program carries credentials naming its publisher;
    // the credential does not make it trusted — it names the box. The
    // audit option records everything it does, for forensics.
    let b = IdentityBox::with_options(
        kernel,
        "BigSoftwareCorp",
        alice,
        BoxOptions {
            audit: true,
            ..Default::default()
        },
    )
    .unwrap();
    println!("running downloaded program in identity box: {}", b.identity());

    let stats = b.stats().clone();
    let (code, _) = b
        .run("freeware-installer", |p| {
            // The "installer" does its legitimate work...
            p.write_file("install.log", b"installed v1.0\n").unwrap();
            // ...and also tries things its publisher shouldn't.
            let snoop = p.read_file("/home/alice/banking.txt");
            let implant = p.write_file("/etc/passwd.bak", b"oops");
            let tamper = p.write_file("/bin/ls", b"trojan");
            println!("  snoop banking.txt : {snoop:?}");
            println!("  implant in /etc   : {implant:?}");
            println!("  tamper with /bin  : {tamper:?}");
            assert!(snoop.is_err() && implant.is_err() && tamper.is_err());
            0
        })
        .unwrap();

    let (checks, denials, rewrites, _) = stats.snapshot();
    println!("program exited {code}");
    println!("forensic record: {checks} checked path operations, {denials} denied, {rewrites} rewritten");
    assert!(denials >= 3);

    // Section 9: "recording the objects accessed and the activities
    // taken by the untrusted user."
    let audit = b.audit().expect("audit enabled");
    println!("
audit log — denied operations:");
    for r in audit.denials() {
        println!("  {r}");
    }
    println!("objects accessed: {:?}", audit.objects_accessed());
    assert!(audit.denials().len() >= 3);
    println!("
alice's files, the account database, and the system are untouched.");
}
