//! `idbox_shell` — the `parrot_identity_box` experience: an interactive
//! shell whose every command executes inside an identity box.
//!
//! ```text
//! cargo run --bin idbox_shell -- [IDENTITY]        # interactive
//! echo -e "whoami\nls" | cargo run --bin idbox_shell -- Freddy
//! ```

use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::shell::BoxShell;
use idbox::vfs::Cred;
use std::io::{BufRead, Write};

fn main() {
    let identity = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Freddy".to_string());

    // A demonstration machine: operator `dthain` with a private file,
    // so denials have something to deny.
    let mut k = Kernel::new();
    k.accounts_mut()
        .add(Account::new("dthain", 1000, 1000))
        .expect("fresh kernel");
    {
        let root = k.vfs().root();
        k.vfs_mut()
            .mkdir(root, "/home/dthain", 0o700, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT)
            .unwrap();
        k.vfs_mut()
            .write_file(
                root,
                "/home/dthain/secret",
                b"the supervisor's private notes\n",
                &Cred::new(1000, 1000),
            )
            .unwrap();
        k.sync_passwd_file();
    }
    let kernel = share(k);
    let ibox = idbox::core::IdentityBox::create(kernel, identity.as_str(), Cred::new(1000, 1000))
        .expect("create identity box");
    let mut shell = BoxShell::new(&ibox).expect("open session");

    eprintln!("identity box shell — you are {}", shell.identity());
    eprintln!("(try: whoami, ls, write f hello, cat f, cat /home/dthain/secret, help)");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("{}$ ", shell.identity());
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line == "exit" || line == "quit" {
            break;
        }
        print!("{}", shell.exec_line(line));
    }
    eprintln!("session closed; no local account was ever created.");
}
