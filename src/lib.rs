//! # idbox — Identity Boxing in Rust
//!
//! A reproduction of *"Identity Boxing: A New Technique for Consistent
//! Global Identity"* (Douglas Thain, SC 2005).
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. See the individual crates for the full documentation:
//!
//! * [`types`] — identities, principals, errno, trap cost model
//! * [`acl`] — per-directory access control lists with wildcard subjects
//!   and the reserve (`v`) right
//! * [`vfs`] — the in-memory Unix filesystem substrate
//! * [`kernel`] — the simulated kernel (processes, fds, signals, accounts)
//! * [`interpose`] — the Parrot-style system-call trapping supervisor
//! * [`core`] — the identity box itself
//! * [`mapping`] — the six baseline identity-mapping methods of Figure 1
//! * [`auth`] — simulated GSI/Kerberos/hostname/unix authentication
//! * [`chirp`] — the Chirp distributed storage and execution system
//! * [`workloads`] — guest programs and the paper's six applications
//! * [`hier`] — the hierarchical identity namespace of Figure 6

pub mod shell;

pub use idbox_acl as acl;
pub use idbox_auth as auth;
pub use idbox_chirp as chirp;
pub use idbox_core as core;
pub use idbox_hier as hier;
pub use idbox_interpose as interpose;
pub use idbox_kernel as kernel;
pub use idbox_mapping as mapping;
pub use idbox_types as types;
pub use idbox_vfs as vfs;
pub use idbox_workloads as workloads;
