//! A small interactive shell over an identity box — the moral
//! equivalent of the paper's `parrot_identity_box Freddy tcsh` session
//! (Figure 2). Commands execute as trapped guest syscalls; every ACL
//! check, denial, and passwd rewrite behaves exactly as for any other
//! boxed program.
//!
//! The logic lives here (testable, string in / string out); the
//! `idbox_shell` binary wraps it around stdin.

use idbox_acl::{Acl, Rights};
use idbox_core::IdentityBox;
use idbox_interpose::{GuestCtx, SharedKernel, Supervisor};
use idbox_kernel::Pid;
use idbox_types::{Errno, SysResult, ACL_FILE_NAME};
use idbox_vfs::FileKind;

/// One boxed shell session.
pub struct BoxShell {
    supervisor: Supervisor,
    pid: Pid,
    identity: String,
}

impl BoxShell {
    /// Open a session inside `ibox`.
    pub fn new(ibox: &IdentityBox) -> SysResult<Self> {
        let pid = ibox.spawn_process("idbox-shell")?;
        Ok(BoxShell {
            supervisor: ibox.supervisor(),
            pid,
            identity: ibox.identity().to_string(),
        })
    }

    /// The boxed identity (for the prompt).
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// The shared kernel (for host-side inspection in tests).
    pub fn kernel(&self) -> &SharedKernel {
        self.supervisor.kernel()
    }

    /// Execute one command line; returns the output text. Errors are
    /// reported in the output, shell-style, never as `Err` (only a
    /// broken session errors).
    pub fn exec_line(&mut self, line: &str) -> String {
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = words.split_first() else {
            return String::new();
        };
        let mut ctx = GuestCtx::new(&mut self.supervisor, self.pid);
        match run_command(&mut ctx, cmd, args) {
            Ok(out) => out,
            Err(e) => format!("{cmd}: {}\n", e.describe()),
        }
    }
}

fn mode_string(kind: FileKind, mode: u16) -> String {
    let type_char = match kind {
        FileKind::Dir => 'd',
        FileKind::Symlink => 'l',
        FileKind::File => '-',
    };
    let mut s = String::new();
    s.push(type_char);
    for shift in [6u16, 3, 0] {
        let triad = (mode >> shift) & 7;
        s.push(if triad & 4 != 0 { 'r' } else { '-' });
        s.push(if triad & 2 != 0 { 'w' } else { '-' });
        s.push(if triad & 1 != 0 { 'x' } else { '-' });
    }
    s
}

fn run_command(ctx: &mut GuestCtx<'_>, cmd: &str, args: &[&str]) -> SysResult<String> {
    let arg = |i: usize| -> SysResult<&str> {
        args.get(i).copied().ok_or(Errno::EINVAL)
    };
    Ok(match cmd {
        "help" => HELP.to_string(),
        "whoami" => format!("{}\n", ctx.get_user_name()?),
        "pwd" => format!("{}\n", ctx.getcwd()?),
        "cd" => {
            ctx.chdir(arg(0)?)?;
            String::new()
        }
        "ls" => {
            let (long, path) = match args {
                ["-l"] => (true, "."),
                ["-l", p] => (true, *p),
                [p] => (false, *p),
                [] => (false, "."),
                _ => return Err(Errno::EINVAL),
            };
            let mut out = String::new();
            for e in ctx.readdir(path)? {
                if e.name == "." || e.name == ".." {
                    continue;
                }
                if long {
                    let st = ctx.lstat(&format!("{path}/{}", e.name))?;
                    out.push_str(&format!(
                        "{} {:>4} {:>8} {}\n",
                        mode_string(st.kind, st.mode),
                        st.nlink,
                        st.size,
                        e.name
                    ));
                } else {
                    out.push_str(&e.name);
                    out.push('\n');
                }
            }
            out
        }
        "cat" => {
            let data = ctx.read_file(arg(0)?)?;
            let mut s = String::from_utf8_lossy(&data).into_owned();
            if !s.ends_with('\n') && !s.is_empty() {
                s.push('\n');
            }
            s
        }
        "write" => {
            let path = arg(0)?;
            let mut text = args[1..].join(" ");
            text.push('\n');
            ctx.write_file(path, text.as_bytes())?;
            String::new()
        }
        "mkdir" => {
            ctx.mkdir(arg(0)?, 0o755)?;
            String::new()
        }
        "rmdir" => {
            ctx.rmdir(arg(0)?)?;
            String::new()
        }
        "rm" => {
            ctx.unlink(arg(0)?)?;
            String::new()
        }
        "mv" => {
            ctx.rename(arg(0)?, arg(1)?)?;
            String::new()
        }
        "cp" => {
            let data = ctx.read_file(arg(0)?)?;
            ctx.write_file(arg(1)?, &data)?;
            String::new()
        }
        "ln" => match args {
            ["-s", target, link] => {
                ctx.symlink(target, link)?;
                String::new()
            }
            [old, new] => {
                ctx.link(old, new)?;
                String::new()
            }
            _ => return Err(Errno::EINVAL),
        },
        "stat" => {
            let st = ctx.stat(arg(0)?)?;
            format!(
                "ino={} kind={:?} mode={:o} nlink={} size={} mtime={}\n",
                st.ino.0, st.kind, st.mode, st.nlink, st.size, st.mtime
            )
        }
        "getacl" => {
            let dir = args.first().copied().unwrap_or(".");
            let data = ctx.read_file(&format!("{dir}/{ACL_FILE_NAME}"))?;
            String::from_utf8_lossy(&data).into_owned()
        }
        // grant <dir> <subject> <rights>: extend a directory's ACL (the
        // visitor needs the A right there, enforced by the box).
        "grant" => {
            let (dir, subject, rights) = (arg(0)?, arg(1)?, arg(2)?);
            let rights = Rights::parse_letters(rights).map_err(|_| Errno::EINVAL)?;
            let acl_path = format!("{dir}/{ACL_FILE_NAME}");
            let current = ctx.read_file(&acl_path)?;
            let mut acl =
                Acl::parse(&String::from_utf8_lossy(&current)).map_err(|_| Errno::EIO)?;
            acl.set(subject, rights);
            ctx.write_file(&acl_path, acl.to_text().as_bytes())?;
            String::new()
        }
        // run <script>: execute a staged GuestScript program in a child.
        "run" => {
            let path = arg(0)?.to_string();
            ctx.exec(&path)?;
            let image = ctx.read_file(&path)?;
            if !idbox_workloads::is_script(&image) {
                return Err(Errno::ENOSYS);
            }
            ctx.run_child(move |c| {
                let r = idbox_workloads::run_script(c, &image);
                let _ = c.write_file("script.out", r.output.as_bytes());
                r.code
            })?;
            let (_, code) = ctx.wait()?;
            let out = ctx.read_file("script.out").unwrap_or_default();
            format!("{}(exit {code})\n", String::from_utf8_lossy(&out))
        }
        _ => return Err(Errno::ENOSYS),
    })
}

const HELP: &str = "\
commands:
  whoami | pwd | cd DIR | ls [-l] [DIR] | cat FILE | stat PATH
  write FILE TEXT... | cp SRC DST | mv OLD NEW | rm FILE
  mkdir DIR | rmdir DIR | ln [-s] TARGET LINK
  getacl [DIR] | grant DIR SUBJECT RIGHTS
  run SCRIPT    (execute a staged #!guestscript program)
  help | exit
";

#[cfg(test)]
mod tests {
    use super::*;
    use idbox_interpose::share;
    use idbox_kernel::{Account, Kernel};
    use idbox_vfs::Cred;

    fn shell() -> BoxShell {
        let mut k = Kernel::new();
        k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
        {
            let root = k.vfs().root();
            k.vfs_mut().mkdir(root, "/home/op", 0o700, &Cred::ROOT).unwrap();
            k.vfs_mut().chown(root, "/home/op", 1000, 1000, &Cred::ROOT).unwrap();
            k.vfs_mut()
                .write_file(root, "/home/op/secret", b"s", &Cred::new(1000, 1000))
                .unwrap();
        }
        let kernel = share(k);
        let b = IdentityBox::create(kernel, "Freddy", Cred::new(1000, 1000)).unwrap();
        BoxShell::new(&b).unwrap()
    }

    #[test]
    fn whoami_and_pwd() {
        let mut sh = shell();
        assert_eq!(sh.exec_line("whoami"), "Freddy\n");
        assert_eq!(sh.exec_line("pwd"), "/home/boxes/Freddy\n");
        assert_eq!(sh.identity(), "Freddy");
    }

    #[test]
    fn file_lifecycle() {
        let mut sh = shell();
        assert_eq!(sh.exec_line("write notes.txt hello shell"), "");
        assert_eq!(sh.exec_line("cat notes.txt"), "hello shell\n");
        assert_eq!(sh.exec_line("cp notes.txt copy.txt"), "");
        assert_eq!(sh.exec_line("mv copy.txt moved.txt"), "");
        let ls = sh.exec_line("ls");
        assert!(ls.contains("notes.txt") && ls.contains("moved.txt"));
        assert_eq!(sh.exec_line("rm moved.txt"), "");
        assert!(!sh.exec_line("ls").contains("moved.txt"));
    }

    #[test]
    fn ls_long_format() {
        let mut sh = shell();
        sh.exec_line("write f.txt x");
        sh.exec_line("mkdir d");
        let out = sh.exec_line("ls -l");
        assert!(out.contains("-rw-r--r--"), "{out}");
        assert!(out.contains("drwxr-xr-x"), "{out}");
    }

    #[test]
    fn denial_reads_like_a_shell_error() {
        let mut sh = shell();
        let out = sh.exec_line("cat /home/op/secret");
        assert_eq!(out, "cat: permission denied\n");
        let out = sh.exec_line("cat /does/not/exist");
        assert_eq!(out, "cat: no such file or directory\n");
    }

    #[test]
    fn cd_and_relative_paths() {
        let mut sh = shell();
        sh.exec_line("mkdir sub");
        assert_eq!(sh.exec_line("cd sub"), "");
        assert_eq!(sh.exec_line("pwd"), "/home/boxes/Freddy/sub\n");
        sh.exec_line("write here.txt data");
        assert_eq!(sh.exec_line("cd .."), "");
        assert_eq!(sh.exec_line("cat sub/here.txt"), "data\n");
    }

    #[test]
    fn getacl_and_grant() {
        let mut sh = shell();
        let acl = sh.exec_line("getacl");
        assert!(acl.contains("Freddy rwldax"), "{acl}");
        assert_eq!(sh.exec_line("grant . George rl"), "");
        let acl = sh.exec_line("getacl");
        assert!(acl.contains("George rl"), "{acl}");
        // Bad rights letters are rejected cleanly.
        let out = sh.exec_line("grant . George zz");
        assert!(out.starts_with("grant:"), "{out}");
    }

    #[test]
    fn run_guestscript() {
        let mut sh = shell();
        sh.exec_line("write job.x #!guestscript");
        // Build the script via the host side (multi-line through write
        // is awkward; use the box directly).
        let mut kernel = sh.kernel().lock();
        let root = kernel.vfs().root();
        kernel
            .vfs_mut()
            .write_file(
                root,
                "/home/boxes/Freddy/job.x",
                b"#!guestscript\necho scripted hello\nexit 0\n",
                &Cred::new(1000, 1000),
            )
            .unwrap();
        kernel
            .vfs_mut()
            .chmod(root, "/home/boxes/Freddy/job.x", 0o755, &Cred::new(1000, 1000))
            .unwrap();
        drop(kernel);
        let out = sh.exec_line("run job.x");
        assert_eq!(out, "scripted hello\n(exit 0)\n");
    }

    #[test]
    fn unknown_command() {
        let mut sh = shell();
        let out = sh.exec_line("frobnicate");
        assert!(out.starts_with("frobnicate:"), "{out}");
        assert!(sh.exec_line("help").contains("whoami"));
        assert_eq!(sh.exec_line(""), "");
    }

    #[test]
    fn symlink_and_stat() {
        let mut sh = shell();
        sh.exec_line("write target.txt data");
        assert_eq!(sh.exec_line("ln -s target.txt alias"), "");
        assert_eq!(sh.exec_line("cat alias"), "data\n");
        let st = sh.exec_line("stat target.txt");
        assert!(st.contains("size=5"), "{st}");
    }
}
