//! The Section 9 forensic facility: an audited identity box records the
//! objects accessed and the activities taken.

use idbox::core::{BoxOptions, IdentityBox};
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::vfs::Cred;

fn audited_box() -> IdentityBox {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    {
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/home/op", 0o700, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/home/op", 1000, 1000, &Cred::ROOT).unwrap();
        k.vfs_mut()
            .write_file(root, "/home/op/secret", b"s", &Cred::new(1000, 1000))
            .unwrap();
    }
    IdentityBox::with_options(
        share(k),
        "JoeHacker",
        Cred::new(1000, 1000),
        BoxOptions {
            audit: true,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn every_activity_is_recorded() {
    let b = audited_box();
    b.run("suspect", |ctx| {
        ctx.write_file("loot.txt", b"haul").unwrap();
        let _ = ctx.read_file("/home/op/secret"); // denied
        ctx.mkdir("stash", 0o755).unwrap();
        let _ = ctx.rename("loot.txt", "stash/loot.txt");
        0
    })
    .unwrap();
    let audit = b.audit().unwrap();
    let log = audit.render();
    // The activities taken...
    assert!(log.contains("open(loot.txt [w])"), "{log}");
    assert!(log.contains("mkdir(stash)"), "{log}");
    assert!(log.contains("rename(loot.txt -> stash/loot.txt)"), "{log}");
    // ...and the denials, flagged.
    assert!(log.contains("open(/home/op/secret [r]) = EACCES DENIED"), "{log}");
    assert_eq!(audit.denials().len(), 1);
    // Exit is recorded too: the record is complete.
    assert!(log.contains("exit(0)"), "{log}");
}

#[test]
fn audit_spans_multiple_sessions_and_children() {
    let b = audited_box();
    b.run("session1", |ctx| {
        ctx.write_file("day1.txt", b"x").unwrap();
        0
    })
    .unwrap();
    b.run("session2", |ctx| {
        let child = ctx
            .run_child(|c| {
                c.write_file("child.txt", b"y").unwrap();
                0
            })
            .unwrap();
        let _ = ctx.wait();
        let _ = child;
        0
    })
    .unwrap();
    let audit = b.audit().unwrap();
    let log = audit.render();
    assert!(log.contains("day1.txt"), "{log}");
    assert!(log.contains("child.txt"), "{log}");
    assert!(log.contains("fork()"), "{log}");
    // Sequence numbers are strictly increasing across sessions.
    let records = audit.records();
    for w in records.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
}

#[test]
fn unaudited_boxes_carry_no_log() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let b = IdentityBox::create(share(k), "Plain", Cred::new(1000, 1000)).unwrap();
    assert!(b.audit().is_none());
    b.run("quiet", |ctx| {
        ctx.write_file("f", b"x").unwrap();
        0
    })
    .unwrap();
    assert!(b.audit().is_none());
}
