//! Thread-safety of the shared kernel: many supervisors (one per
//! visitor), each on its own OS thread, hammering one simulated machine
//! — the situation a busy Chirp server is in.

use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::types::Errno;
use idbox::vfs::Cred;
use std::sync::Arc;

#[test]
fn many_boxes_one_kernel() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let sup = Cred::new(1000, 1000);

    let mut threads = Vec::new();
    for i in 0..8 {
        let kernel = kernel.clone();
        threads.push(std::thread::spawn(move || {
            let id = format!("kerberos:user{i}@nowhere.edu");
            let b = IdentityBox::create(kernel, id.as_str(), sup).unwrap();
            let home = b.home().to_string();
            b.run("worker", move |ctx| {
                // Private work in the visitor's own home.
                for round in 0..30 {
                    let path = format!("{home}/r{round}.dat");
                    let payload = format!("user{i} round{round}");
                    ctx.write_file(&path, payload.as_bytes()).unwrap();
                    assert_eq!(ctx.read_file(&path).unwrap(), payload.as_bytes());
                    if round % 3 == 0 {
                        ctx.unlink(&path).unwrap();
                    }
                }
                // Probing another user's home is always denied, never a
                // crash, even mid-churn.
                let other = format!(
                    "/home/boxes/kerberos_user{}_nowhere.edu",
                    (i + 1) % 8
                );
                match ctx.readdir(&other) {
                    Err(Errno::EACCES) | Err(Errno::ENOENT) => {}
                    other_result => panic!("expected denial, got {other_result:?}"),
                }
                // Shared scratch space: everyone appends to their own
                // file in world-writable /tmp (no ACL: nobody rules).
                ctx.write_file(&format!("/tmp/u{i}.log"), b"done").unwrap();
                0
            })
            .unwrap()
        }));
    }
    for t in threads {
        let (code, report) = t.join().unwrap();
        assert_eq!(code, 0);
        assert!(report.traps > 0);
    }

    // Post-mortem integrity: every expected file exists with the right
    // content; the account database is untouched.
    let mut k = kernel.lock();
    let root = k.vfs().root();
    for i in 0..8 {
        let log = k
            .vfs_mut()
            .read_file(root, &format!("/tmp/u{i}.log"), &Cred::ROOT)
            .unwrap();
        assert_eq!(log, b"done");
    }
    assert_eq!(k.accounts().len(), 3, "root, nobody, op — nothing else");
}

#[test]
fn fork_trees_in_parallel() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let sup = Cred::new(1000, 1000);
    let b = Arc::new(IdentityBox::create(kernel, "Fred", sup).unwrap());

    let mut threads = Vec::new();
    for t in 0..4 {
        let b = Arc::clone(&b);
        threads.push(std::thread::spawn(move || {
            b.run("tree", move |ctx| {
                for _ in 0..10 {
                    let child = ctx
                        .run_child(|c| {
                            // Children see the same identity and can work.
                            assert_eq!(c.get_user_name().unwrap().as_str(), "Fred");
                            c.write_file(&format!("child-{t}.out"), b"x").unwrap();
                            0
                        })
                        .unwrap();
                    let (reaped, code) = ctx.wait().unwrap();
                    assert_eq!((reaped, code), (child, 0));
                }
                0
            })
            .unwrap()
            .0
        }));
    }
    for t in threads {
        assert_eq!(t.join().unwrap(), 0);
    }
    // No process leaks: only init remains running (everything else
    // exited and was reaped or is a reparented zombie init can reap).
    let k = b.kernel().lock();
    let live = k
        .pids()
        .into_iter()
        .filter(|&p| k.process(p).map(|pr| pr.is_alive()).unwrap_or(false))
        .count();
    assert_eq!(live, 1, "only init should still be alive");
}
