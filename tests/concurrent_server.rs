//! Concurrent Chirp service: several authenticated clients drive one
//! server over real TCP at the same time. Read-only traffic rides the
//! kernel's shared lock, so this exercises the reader/writer split end
//! to end — correctness here means every client sees exactly its own
//! files (ACL isolation holds under contention) and the server stays
//! live throughout.

use idbox::acl::{Acl, Rights};
use idbox::auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox::chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox::types::{AuthMethod, Errno};
use std::sync::{Arc, Barrier};

const NCLIENTS: usize = 6;
const ROUNDS: usize = 20;

fn server() -> (idbox::chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 0xC0FFEE);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let s = ChirpServer::new(ServerConfig {
        name: "concurrent".into(),
        verifier,
        root_acl,
        ..Default::default()
    })
    .unwrap();
    (s.spawn().unwrap(), ca)
}

fn creds(ca: &CertificateAuthority, i: usize) -> Vec<ClientCredential> {
    vec![ClientCredential::Globus(
        ca.issue(format!("/O=UnivNowhere/CN=User{i}")),
    )]
}

#[test]
fn concurrent_clients_stay_isolated_and_live() {
    let (handle, ca) = server();
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(NCLIENTS));

    let workers: Vec<_> = (0..NCLIENTS)
        .map(|i| {
            let ca = ca.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = ChirpClient::connect(addr, &creds(&ca, i)).unwrap();
                assert_eq!(
                    c.whoami().unwrap().to_string(),
                    format!("globus:/O=UnivNowhere/CN=User{i}")
                );

                // Phase 1: everyone reserves a directory and writes a
                // private file, all at once.
                let dir = format!("/u{i}");
                let file = format!("{dir}/data.dat");
                let body = format!("client {i} payload").into_bytes();
                c.mkdir(&dir, 0o755).unwrap();
                c.put(&file, &body).unwrap();

                // Phase 2 starts only when every directory exists, so
                // the cross-reads below test ACLs, not timing.
                barrier.wait();

                for round in 0..ROUNDS {
                    // Read-heavy own traffic: served under the shared
                    // kernel lock, concurrently with everyone else's.
                    assert_eq!(c.stat(&file).unwrap().size, body.len() as u64);
                    assert_eq!(c.get(&file).unwrap(), body, "round {round}");
                    // The neighbour's reserved directory stays shut.
                    let other = (i + 1) % NCLIENTS;
                    assert_eq!(
                        c.get(&format!("/u{other}/data.dat")),
                        Err(Errno::EACCES),
                        "client {i} read client {other}'s file"
                    );
                    assert_eq!(c.readdir(&format!("/u{other}")), Err(Errno::EACCES));
                }

                // Writes interleave with the readers without corruption.
                let body2 = format!("client {i} rewritten").into_bytes();
                c.put(&file, &body2).unwrap();
                assert_eq!(c.get(&file).unwrap(), body2);
                c.quit().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Liveness after the storm: a fresh client still gets served, and
    // the finished sessions drain out of the registry.
    let mut late = ChirpClient::connect(addr, &creds(&ca, 99)).unwrap();
    assert!(late.whoami().is_ok());
    assert_eq!(late.readdir("/u0"), Err(Errno::EACCES));
    late.quit().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.active_connections() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "sessions never drained: {}",
            handle.active_connections()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
}
