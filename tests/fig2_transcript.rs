//! Figure 2 — the interactive identity-box session, as an integration
//! test spanning kernel, interposer and box.

use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel, OpenFlags};
use idbox::types::Errno;
use idbox::vfs::Cred;

#[test]
fn figure2_session_transcript() {
    // The supervising user dthain with a private `secret`.
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
    let dthain = Cred::new(1000, 1000);
    {
        let root = k.vfs().root();
        k.vfs_mut().mkdir(root, "/home/dthain", 0o700, &Cred::ROOT).unwrap();
        k.vfs_mut().chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT).unwrap();
        k.vfs_mut()
            .write_file(root, "/home/dthain/secret", b"private", &dthain)
            .unwrap();
        k.sync_passwd_file();
    }
    let kernel = share(k);

    // dthain% parrot_identity_box Freddy tcsh
    let b = IdentityBox::create(kernel.clone(), "Freddy", dthain).unwrap();

    let (code, report) = b
        .run("tcsh", |sh| {
            // freddy% whoami  -> Freddy
            assert_eq!(sh.get_user_name().unwrap().as_str(), "Freddy");

            // The private passwd copy puts Freddy first, so account
            // tools resolve the name; the system file is untouched.
            let passwd =
                String::from_utf8(sh.read_file("/etc/passwd").unwrap()).unwrap();
            assert!(passwd.starts_with("Freddy:x:"));

            // freddy% cat ~dthain/secret -> access denied (no ACL -> the
            // visitor is nobody under Unix rules).
            assert_eq!(
                sh.open("/home/dthain/secret", OpenFlags::rdonly(), 0),
                Err(Errno::EACCES)
            );

            // freddy% vi mydata  (in the fresh home, ACL grants all)
            sh.write_file("mydata", b"freddy's file").unwrap();
            assert_eq!(sh.read_file("mydata").unwrap(), b"freddy's file");

            // The home ACL names Freddy with full rights.
            let acl = String::from_utf8(sh.read_file(".__acl").unwrap()).unwrap();
            assert!(acl.contains("Freddy"));

            // Freddy inherits his identity across fork, and can only
            // signal his own processes.
            let child = sh
                .run_child(|c| {
                    assert_eq!(c.get_user_name().unwrap().as_str(), "Freddy");
                    0
                })
                .unwrap();
            let (reaped, code) = sh.wait().unwrap();
            assert_eq!((reaped, code), (child, 0));
            0
        })
        .unwrap();
    assert_eq!(code, 0);
    assert!(report.traps > 10, "the session must be fully interposed");

    // After the session: Freddy exists nowhere in the account database,
    // and the real /etc/passwd is unchanged.
    let mut k = kernel.lock();
    assert!(k.accounts().lookup("Freddy").is_none());
    let root = k.vfs().root();
    let passwd = k.vfs_mut().read_file(root, "/etc/passwd", &Cred::ROOT).unwrap();
    assert!(!String::from_utf8(passwd).unwrap().contains("Freddy"));
    // But Freddy's data survives for a return visit.
    let data = k
        .vfs_mut()
        .read_file(root, "/home/boxes/Freddy/mydata", &Cred::ROOT)
        .unwrap();
    assert_eq!(data, b"freddy's file");
}
