//! Figure 3 — the distributed workflow, as an integration test: GSI
//! authentication, reserve-right mkdir, staging, remote execution in an
//! identity box, retrieval — plus the Parrot-style mount of the same
//! server into a local guest namespace.

use idbox::acl::{Acl, Rights};
use idbox::auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox::chirp::{ChirpClient, ChirpDriver, ChirpServer, ServerConfig};
use idbox::interpose::{share, GuestCtx, Supervisor};
use idbox::kernel::Kernel;
use idbox::types::{AuthMethod, Errno, Identity};
use idbox::vfs::Cred;

fn server() -> (idbox::chirp::ChirpServerHandle, CertificateAuthority) {
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 7777);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut root_acl = Acl::empty();
    root_acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let mut s = ChirpServer::new(ServerConfig {
        name: "fig3".into(),
        verifier,
        root_acl,
        ..Default::default()
    })
    .unwrap();
    s.register_program("sim", |ctx, _| {
        let input = match ctx.read_file("input.dat") {
            Ok(i) => i,
            Err(_) => return 1,
        };
        let sum: u64 = input.iter().map(|&b| b as u64).sum();
        match ctx.write_file("out.dat", format!("sum={sum}").as_bytes()) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    });
    (s.spawn().unwrap(), ca)
}

#[test]
fn figure3_workflow_and_mount() {
    let (handle, ca) = server();
    let creds = vec![ClientCredential::Globus(ca.issue("/O=UnivNowhere/CN=Fred"))];

    // The five numbered steps of Figure 3.
    let mut c = ChirpClient::connect(handle.addr(), &creds).unwrap();
    c.mkdir("/work", 0o755).unwrap(); // 1 (reserve right)
    c.put_mode("/work/sim.exe", b"#!guest sim\n", 0o755).unwrap(); // 3
    c.put("/work/input.dat", &[1, 2, 3, 4]).unwrap();
    assert_eq!(c.exec("/work/sim.exe", &[]).unwrap(), 0); // 4
    assert_eq!(c.get("/work/out.dat").unwrap(), b"sum=10"); // 5

    // The identity box on the server really was Fred's: his box home
    // exists in the server kernel, named by the identity.
    {
        let mut k = handle.kernel().lock();
        let root = k.vfs().root();
        let boxes = k.vfs_mut().readdir(root, "/home/boxes", &Cred::ROOT).unwrap();
        assert!(
            boxes.iter().any(|e| e.name.contains("Fred")),
            "server-side box home missing: {boxes:?}"
        );
    }

    // Parrot-style access: a local guest mounts the server and reads the
    // same output file as an ordinary path.
    let c2 = ChirpClient::connect(handle.addr(), &creds).unwrap();
    let kernel = share(Kernel::new());
    let pid = {
        let mut k = kernel.lock();
        k.mount("/chirp/fig3", Box::new(ChirpDriver::new(c2)));
        let pid = k.spawn(Cred::new(1000, 1000), "/tmp", "guest").unwrap();
        k.set_identity(pid, Identity::new("globus:/O=UnivNowhere/CN=Fred"))
            .unwrap();
        pid
    };
    let mut sup = Supervisor::direct(kernel);
    let mut ctx = GuestCtx::new(&mut sup, pid);
    assert_eq!(ctx.read_file("/chirp/fig3/work/out.dat").unwrap(), b"sum=10");
    let st = ctx.stat("/chirp/fig3/work/out.dat").unwrap();
    assert_eq!(st.size, 6);

    // A different identity cannot ride Fred's mounted connection.
    {
        let k = ctx.supervisor().kernel().lock();
        k.set_identity(pid, Identity::new("globus:/O=UnivNowhere/CN=Mallory"))
            .unwrap();
    }
    assert_eq!(
        ctx.read_file("/chirp/fig3/work/out.dat"),
        Err(Errno::EPERM)
    );
    handle.shutdown();
}
