//! Figure 1, end to end: the measured property matrix must reproduce the
//! paper's table.

use idbox::mapping::probe::probe_all;
use idbox::mapping::Tri;

#[test]
fn figure1_property_matrix() {
    let rows = probe_all();
    // (method, privilege, protect, privacy, sharing, return)
    let expected: &[(&str, bool, bool, Tri, Tri, bool)] = &[
        ("single", false, false, Tri::No, Tri::Yes, true),
        ("untrusted", true, true, Tri::No, Tri::Yes, true),
        ("private", true, true, Tri::Yes, Tri::No, true),
        ("group", true, true, Tri::Fixed, Tri::Fixed, true),
        ("anonymous", true, true, Tri::Yes, Tri::No, false),
        ("pool", true, true, Tri::Yes, Tri::No, false),
        ("identity box", false, true, Tri::Yes, Tri::Yes, true),
    ];
    assert_eq!(rows.len(), expected.len());
    for (method, privilege, protect, privacy, sharing, ret) in expected {
        let row = rows
            .iter()
            .find(|r| r.method == *method)
            .unwrap_or_else(|| panic!("missing method {method}"));
        assert_eq!(row.requires_privilege, *privilege, "{method}: privilege");
        assert_eq!(row.protects_owner, *protect, "{method}: protect owner");
        assert_eq!(row.allows_privacy, *privacy, "{method}: privacy");
        assert_eq!(row.allows_sharing, *sharing, "{method}: sharing");
        assert_eq!(row.allows_return, *ret, "{method}: return");
    }
}

#[test]
fn burden_scales_as_the_paper_describes() {
    let rows = probe_all();
    let by_name = |n: &str| rows.iter().find(|r| r.method == n).unwrap();
    // Private accounts: a root intervention for every one of the 3 users.
    assert_eq!(by_name("private").interventions, 3);
    // Group accounts: one per group (2 groups), regardless of user count.
    assert_eq!(by_name("group").interventions, 2);
    // Pool: one batch to create the pool.
    assert_eq!(by_name("pool").interventions, 1);
    // Identity boxing: no administrator, ever.
    assert_eq!(by_name("identity box").interventions, 0);
    assert_eq!(by_name("single").interventions, 0);
    assert_eq!(by_name("anonymous").interventions, 0);
}
