//! Section 6: Garfinkel's five traps and pitfalls of system-call
//! interposition, tested against this implementation.

use idbox::core::IdentityBox;
use idbox::interpose::{share, GuestCtx, SharedKernel, Supervisor};
use idbox::kernel::{Account, Kernel, OpenFlags, Syscall, SysRet};
use idbox::types::{CostModel, Errno};
use idbox::vfs::Cred;

fn machine() -> (SharedKernel, Cred) {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("dthain", 1000, 1000)).unwrap();
    let root = k.vfs().root();
    k.vfs_mut().mkdir(root, "/home/dthain", 0o700, &Cred::ROOT).unwrap();
    k.vfs_mut().chown(root, "/home/dthain", 1000, 1000, &Cred::ROOT).unwrap();
    (share(k), Cred::new(1000, 1000))
}

/// Pitfall 1 — "incorrectly replicating the OS": the supervisor must not
/// mirror state that can desynchronize. Here the kernel is the single
/// holder of all state; two process trees mutating the same files stay
/// coherent.
#[test]
fn pitfall1_no_replicated_state() {
    let (kernel, sup_cred) = machine();
    let b1 = IdentityBox::create(kernel.clone(), "Fred", sup_cred).unwrap();
    let b2 = IdentityBox::create(kernel.clone(), "Fred", sup_cred).unwrap();
    // Two supervisors over the same identity interleave operations on
    // one file; every view is the kernel's view.
    let home = b1.home().to_string();
    let path = format!("{home}/shared.log");
    let p1 = path.clone();
    b1.run("writer", move |ctx| {
        ctx.write_file(&p1, b"round1").unwrap();
        0
    })
    .unwrap();
    let p2 = path.clone();
    b2.run("appender", move |ctx| {
        let fd = ctx.open(&p2, OpenFlags::append_create(), 0o644).unwrap();
        ctx.write(fd, b"+round2").unwrap();
        ctx.close(fd).unwrap();
        0
    })
    .unwrap();
    let p3 = path.clone();
    b1.run("reader", move |ctx| {
        assert_eq!(ctx.read_file(&p3).unwrap(), b"round1+round2");
        0
    })
    .unwrap();
}

/// Pitfall 2 — "overlooking indirect paths": symlinks must be judged by
/// their target's directory; unreadable targets cannot be reached
/// through links, nor captured by hard links.
#[test]
fn pitfall2_indirect_paths() {
    let (kernel, sup_cred) = machine();
    {
        let mut k = kernel.lock();
        let root = k.vfs().root();
        k.vfs_mut()
            .write_file(root, "/home/dthain/secret", b"shh", &sup_cred)
            .unwrap();
    }
    let b = IdentityBox::create(kernel, "Freddy", sup_cred).unwrap();
    let home = b.home().to_string();
    b.run("attacker", move |ctx| {
        // A symlink planted in the visitor's own home, pointing at the
        // supervisor's private file.
        ctx.symlink("/home/dthain/secret", &format!("{home}/alias"))
            .unwrap();
        // Opening through the visitor-controlled name must still fail:
        // the ACL consulted is the *target's* directory.
        assert_eq!(
            ctx.open(&format!("{home}/alias"), OpenFlags::rdonly(), 0),
            Err(Errno::EACCES)
        );
        // Hard links to unreadable files are refused outright.
        assert_eq!(
            ctx.link("/home/dthain/secret", &format!("{home}/captured")),
            Err(Errno::EACCES)
        );
        0
    })
    .unwrap();
}

/// Pitfall 3 — "incorrect subsetting of a complex interface": no call is
/// outlawed; every syscall has an implementation and containment comes
/// from access control. A denied operation returns an errno, the
/// program keeps running, and permitted work proceeds.
#[test]
fn pitfall3_no_interface_subsetting() {
    let (kernel, sup_cred) = machine();
    let b = IdentityBox::create(kernel, "Freddy", sup_cred).unwrap();
    let (code, _) = b
        .run("prober", |ctx| {
            // A spread of calls across the whole interface: none may
            // kill the process, each must give a real answer.
            let _ = ctx.stat("/etc/passwd");
            let _ = ctx.readdir("/");
            let _ = ctx.mkdir("/forbidden", 0o755);
            let _ = ctx.unlink("/etc/passwd");
            let _ = ctx.rename("/etc", "/etc2");
            let _ = ctx.symlink("/x", "/y");
            let _ = ctx.chmod("/etc", 0o777);
            let _ = ctx.chown("/etc", 1, 1);
            let _ = ctx.truncate("/etc/passwd", 0);
            // The process is alive and can still do legitimate work.
            ctx.write_file("proof.txt", b"still alive").unwrap();
            assert_eq!(ctx.read_file("proof.txt").unwrap(), b"still alive");
            0
        })
        .unwrap();
    assert_eq!(code, 0);
}

/// Pitfall 4 — "race conditions" between check and use: the supervisor
/// holds the kernel for the whole trapped call, so no other actor can
/// swap the ACL between the policy check and the implementation. We
/// verify the supervisor-side invariant directly: a syscall is one
/// critical section.
#[test]
fn pitfall4_check_and_use_are_atomic() {
    let (kernel, sup_cred) = machine();
    let b = IdentityBox::create(kernel.clone(), "Freddy", sup_cred).unwrap();
    let home = b.home().to_string();
    // A background thread continually flips the ACL between permissive
    // and empty while the guest hammers reads. Every read must be
    // *consistently* judged: either full success or clean EACCES — never
    // a half-executed state (e.g. an opened fd that then fails fstat).
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flipper = {
        let kernel = kernel.clone();
        let home = home.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut on = false;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut k = kernel.lock();
                let root = k.vfs().root();
                let dir = k.vfs().resolve(root, &home, true, &Cred::ROOT).unwrap();
                let acl = if on {
                    idbox::acl::Acl::owner(&idbox::types::Identity::new("Freddy"))
                } else {
                    idbox::acl::Acl::empty()
                };
                idbox::core::write_acl(k.vfs_mut(), dir, &acl, &Cred::ROOT).unwrap();
                on = !on;
            }
        })
    };
    let path = format!("{home}/data");
    {
        let mut k = kernel.lock();
        let root = k.vfs().root();
        k.vfs_mut().write_file(root, &path, b"payload", &sup_cred).unwrap();
    }
    let p = path.clone();
    b.run("racer", move |ctx| {
        for _ in 0..300 {
            match ctx.open(&p, OpenFlags::rdonly(), 0) {
                Ok(fd) => {
                    // Once opened, the whole read path works.
                    let mut buf = [0u8; 7];
                    assert_eq!(ctx.pread(fd, &mut buf, 0).unwrap(), 7);
                    ctx.close(fd).unwrap();
                }
                Err(Errno::EACCES) => {}
                Err(e) => panic!("unexpected errno {e}"),
            }
        }
        0
    })
    .unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    flipper.join().unwrap();
}

/// Pitfall 5 — "side effects of denying system calls": the supervisor
/// can inject any return value, including precise errnos; denial is
/// never SIGKILL or a mangled result.
#[test]
fn pitfall5_clean_denial_values() {
    let (kernel, sup_cred) = machine();
    {
        let mut k = kernel.lock();
        let root = k.vfs().root();
        k.vfs_mut()
            .write_file(root, "/home/dthain/secret", b"x", &sup_cred)
            .unwrap();
    }
    let b = IdentityBox::create(kernel.clone(), "Freddy", sup_cred).unwrap();
    b.run("denied", |ctx| {
        // Exact errnos, distinguishing denial kinds.
        assert_eq!(
            ctx.open("/home/dthain/secret", OpenFlags::rdonly(), 0),
            Err(Errno::EACCES)
        );
        assert_eq!(ctx.chown("/tmp", 0, 0), Err(Errno::EPERM));
        assert_eq!(
            ctx.stat("/no/such/path/at/all"),
            Err(Errno::ENOENT)
        );
        0
    })
    .unwrap();
    // And the raw mechanism supports arbitrary injected results: a
    // DenyAll policy turns every path call into EACCES without killing.
    let pid = kernel.lock().spawn(sup_cred, "/tmp", "denied").unwrap();
    let mut sup = Supervisor::interposed(
        kernel,
        Box::new(idbox::interpose::DenyAll),
        CostModel::free_switches(),
    );
    let mut ctx = GuestCtx::new(&mut sup, pid);
    assert_eq!(ctx.stat("/tmp"), Err(Errno::EACCES));
    assert_eq!(ctx.getpid(), pid.0 as i64, "non-path calls still work");
}

/// The supervising user is effectively root with respect to the box: a
/// process *outside* the box modifies the same files freely.
#[test]
fn supervisor_is_omnipotent_outside_the_box() {
    let (kernel, sup_cred) = machine();
    let b = IdentityBox::create(kernel.clone(), "Freddy", sup_cred).unwrap();
    let path = format!("{}/visitors.dat", b.home());
    let p = path.clone();
    b.run("visitor", move |ctx| {
        ctx.write_file(&p, b"visitor data").unwrap();
        0
    })
    .unwrap();
    // dthain, outside any box, ignores the ACL entirely.
    let mut k = kernel.lock();
    let root = k.vfs().root();
    let data = k.vfs_mut().read_file(root, &path, &sup_cred).unwrap();
    assert_eq!(data, b"visitor data");
    k.vfs_mut()
        .write_file(root, &path, b"supervisor was here", &sup_cred)
        .unwrap();
}

/// Boundary probing: malformed register-level calls produce errnos, not
/// supervisor crashes (the "trigger bugs in the supervisor" resistance).
#[test]
fn malformed_syscalls_do_not_crash_the_supervisor() {
    let (kernel, sup_cred) = machine();
    let pid = kernel.lock().spawn(sup_cred, "/tmp", "fuzzer").unwrap();
    let mut k = kernel.lock();
    // Direct kernel-level garbage: out-of-range fds, dead pids, bad
    // whences are all clean errors.
    assert_eq!(k.syscall(pid, Syscall::Close(9999)), Err(Errno::EBADF));
    assert_eq!(k.syscall(pid, Syscall::Read(42, 10)), Err(Errno::EBADF));
    assert_eq!(
        k.syscall(pid, Syscall::Kill(idbox::kernel::Pid(4242), idbox::kernel::Signal::Term)),
        Err(Errno::ESRCH)
    );
    match k.syscall(pid, Syscall::Getpid) {
        Ok(SysRet::Num(n)) => assert_eq!(n, pid.0 as i64),
        other => panic!("unexpected {other:?}"),
    }
}
