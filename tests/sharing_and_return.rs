//! Cross-crate behaviours the paper's introduction promises: consistent
//! naming everywhere, controlled sharing via ACLs, and return to stored
//! data — across box sessions and across the Chirp wire.

use idbox::acl::{Acl, Rights};
use idbox::auth::{CertificateAuthority, ClientCredential, ServerVerifier};
use idbox::chirp::{ChirpClient, ChirpServer, ServerConfig};
use idbox::core::IdentityBox;
use idbox::interpose::share;
use idbox::kernel::{Account, Kernel};
use idbox::types::{AuthMethod, Errno, Identity};
use idbox::vfs::Cred;

#[test]
fn same_name_local_and_remote() {
    // One grid identity used (1) in a local identity box and (2) against
    // a Chirp server — the name is identical in both places, which is
    // the paper's titular property.
    let fred_name = "globus:/O=UnivNowhere/CN=Fred";

    // Local box.
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let b = IdentityBox::create(kernel, fred_name, Cred::new(1000, 1000)).unwrap();
    b.run("local", |ctx| {
        assert_eq!(
            ctx.get_user_name().unwrap().as_str(),
            "globus:/O=UnivNowhere/CN=Fred"
        );
        0
    })
    .unwrap();

    // Remote server.
    let ca = CertificateAuthority::new("/O=UnivNowhere CA", 99);
    let mut verifier = ServerVerifier::new();
    verifier.accept = vec![AuthMethod::Globus];
    verifier.cas.trust(ca.clone());
    let mut acl = Acl::empty();
    acl.set_reserve("globus:/O=UnivNowhere/*", Rights::LIST, Rights::RWLAX);
    let handle = ChirpServer::new(ServerConfig {
        name: "s".into(),
        verifier,
        root_acl: acl,
        ..Default::default()
    })
    .unwrap()
    .spawn()
    .unwrap();
    let creds = vec![ClientCredential::Globus(ca.issue("/O=UnivNowhere/CN=Fred"))];
    let mut c = ChirpClient::connect(handle.addr(), &creds).unwrap();
    assert_eq!(c.whoami().unwrap().to_string(), fred_name);
    handle.shutdown();
}

#[test]
fn acl_sharing_between_boxes_is_first_class() {
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let sup = Cred::new(1000, 1000);
    let fred = IdentityBox::create(kernel.clone(), "kerberos:fred@nowhere.edu", sup).unwrap();
    let george =
        IdentityBox::create(kernel.clone(), "kerberos:george@nowhere.edu", sup).unwrap();
    let anyone_at_nowhere =
        IdentityBox::create(kernel.clone(), "kerberos:alice@nowhere.edu", sup).unwrap();

    // Fred shares with a *wildcard*: everyone in his realm may read.
    let dir = fred.home().to_string();
    let acl_path = format!("{dir}/.__acl");
    let data_path = format!("{dir}/results.dat");
    let (dp, ap) = (data_path.clone(), acl_path.clone());
    fred.run("share", move |ctx| {
        ctx.write_file(&dp, b"findings").unwrap();
        let mut acl = String::from_utf8(ctx.read_file(&ap).unwrap()).unwrap();
        acl.push_str("kerberos:*@nowhere.edu rl\n");
        ctx.write_file(&ap, acl.as_bytes()).unwrap();
        0
    })
    .unwrap();

    for reader in [&george, &anyone_at_nowhere] {
        let dp = data_path.clone();
        reader
            .run("read", move |ctx| {
                assert_eq!(ctx.read_file(&dp).unwrap(), b"findings");
                0
            })
            .unwrap();
    }
    // But wildcard readers hold only rl — no writes, no ACL edits.
    let (dp, ap) = (data_path.clone(), acl_path.clone());
    george
        .run("try-write", move |ctx| {
            assert_eq!(ctx.write_file(&dp, b"overwrite"), Err(Errno::EACCES));
            assert_eq!(ctx.write_file(&ap, b"george rwldax\n"), Err(Errno::EACCES));
            0
        })
        .unwrap();
}

#[test]
fn return_across_sessions_and_supervisors() {
    // A visitor stores data, the box is dropped entirely, a new box for
    // the same identity (even by a different supervisor instance) finds
    // the same home and data — Figure 1's "allow return".
    let mut k = Kernel::new();
    k.accounts_mut().add(Account::new("op", 1000, 1000)).unwrap();
    let kernel = share(k);
    let sup = Cred::new(1000, 1000);
    let id = Identity::new("globus:/O=UnivNowhere/CN=Fred");
    let home = {
        let b = IdentityBox::create(kernel.clone(), id.clone(), sup).unwrap();
        let home = b.home().to_string();
        let h = home.clone();
        b.run("day1", move |ctx| {
            ctx.write_file(&format!("{h}/persistent.txt"), b"day 1 state")
                .unwrap();
            0
        })
        .unwrap();
        home
    }; // box dropped
    let b2 = IdentityBox::create(kernel, id, sup).unwrap();
    assert_eq!(b2.home(), home);
    let h = home.clone();
    b2.run("day2", move |ctx| {
        assert_eq!(
            ctx.read_file(&format!("{h}/persistent.txt")).unwrap(),
            b"day 1 state"
        );
        0
    })
    .unwrap();
}
