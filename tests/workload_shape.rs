//! Figure 5 shape checks spanning workloads + interposer + box.
//!
//! Debug builds are too noisy for percentage comparisons, so the cheap
//! structural shape (trap density, syscall mixes) is always checked and
//! the full Figure 5(b) band check is `#[ignore]`d — run it with
//! `cargo test --release -- --ignored` or regenerate the table with the
//! `fig5b_table` harness binary.

use idbox::types::CostModel;
use idbox::workloads::{all_apps, time_direct_and_boxed, Scale};

/// The syscall *mix* is what distinguishes make from the scientific
/// applications: metadata calls dominate it.
#[test]
fn make_is_metadata_bound_the_others_are_io_bound() {
    use idbox::interpose::{share, GuestCtx, Supervisor};
    use idbox::kernel::Kernel;
    use idbox::vfs::Cred;
    for app in all_apps() {
        let kernel = share(Kernel::new());
        let pid = {
            let mut k = kernel.lock();
            let root = k.vfs().root();
            k.vfs_mut().mkdir_all(root, "/w", 0o777, &Cred::ROOT).unwrap();
            k.spawn(Cred::new(1000, 1000), "/w", app.name).unwrap()
        };
        let mut sup = Supervisor::direct(kernel.clone());
        let mut ctx = GuestCtx::new(&mut sup, pid);
        (app.prepare)(&mut ctx, Scale::test());
        assert_eq!((app.run)(&mut ctx, Scale::test()), 0, "{}", app.name);
        let k = kernel.lock();
        let count = |name: &str| k.stats.count(name);
        // Metadata calls vs. data-moving calls: the distinction Section 7
        // draws between make and the scientific codes.
        let metadata = count("stat")
            + count("lstat")
            + count("fstat")
            + count("open")
            + count("close")
            + count("readdir")
            + count("fork")
            + count("exec")
            + count("wait");
        let data = count("read") + count("write") + count("pread") + count("pwrite");
        match app.name {
            "make" => assert!(
                metadata > data,
                "make must be metadata-bound: {metadata} metadata vs {data} data calls"
            ),
            _ => assert!(
                data > metadata,
                "{}: scientific apps move data, not metadata ({metadata} vs {data})",
                app.name
            ),
        }
    }
}

/// Full Figure 5(b) reproduction: run with `--release -- --ignored`.
/// Asserts the paper's *shape*: all five scientific applications below
/// 15% overhead, make far above all of them.
#[test]
#[ignore = "timing-sensitive; run in release mode (see fig5b_table)"]
fn figure5b_shape_in_release() {
    let model = CostModel::calibrated();
    let results = time_direct_and_boxed(Scale(0.5), model, 3).unwrap();
    let make = results.iter().find(|m| m.name == "make").unwrap();
    let sci: Vec<_> = results.iter().filter(|m| m.name != "make").collect();
    for m in &sci {
        assert!(
            m.overhead_pct() < 15.0,
            "{}: scientific overhead {:.1}% too high",
            m.name,
            m.overhead_pct()
        );
    }
    let sci_max = sci.iter().map(|m| m.overhead_pct()).fold(0.0, f64::max);
    assert!(
        make.overhead_pct() > sci_max * 2.0,
        "make {:.1}% must dominate scientific max {:.1}%",
        make.overhead_pct(),
        sci_max
    );
    assert!(
        make.overhead_pct() > 15.0,
        "make {:.1}% must be substantial",
        make.overhead_pct()
    );
}
